//! Realized-SINR evaluation from sampled gains.
//!
//! The simulator draws one gain per (sender, receiver) pair and asks,
//! per receiver, whether the realized `X_j = Z_jj / (N₀ + Σ_{i≠j} Z_ij)`
//! clears the decoding threshold (Eq. (7)–(8)).

use crate::params::ChannelParams;
use fading_math::KahanSum;

/// Result of evaluating one receiver in one channel realization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinrOutcome {
    /// Realized SINR `X_j` (`+∞` when the denominator is zero).
    pub sinr: f64,
    /// Whether `X_j ≥ γ_th`.
    pub success: bool,
}

/// Computes the realized SINR outcome for a receiver.
///
/// * `signal` — realized power from the desired sender, `Z_jj`;
/// * `interference` — realized powers from each concurrent interferer.
pub fn sinr_of<I>(params: &ChannelParams, signal: f64, interference: I) -> SinrOutcome
where
    I: IntoIterator<Item = f64>,
{
    debug_assert!(signal >= 0.0, "negative signal power");
    let total = KahanSum::sum_iter(interference);
    debug_assert!(total >= 0.0, "negative interference power");
    let denom = params.noise + total;
    let sinr = if denom == 0.0 {
        f64::INFINITY
    } else {
        signal / denom
    };
    SinrOutcome {
        sinr,
        success: sinr >= params.gamma_th,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_denominator_is_infinite_success() {
        let p = ChannelParams::paper_defaults();
        let out = sinr_of(&p, 1e-12, std::iter::empty());
        assert_eq!(out.sinr, f64::INFINITY);
        assert!(out.success);
    }

    #[test]
    fn threshold_is_inclusive() {
        let p = ChannelParams::paper_defaults(); // γ_th = 1
        assert!(sinr_of(&p, 2.0, [2.0]).success);
        assert!(!sinr_of(&p, 2.0, [2.0 + 1e-9]).success);
    }

    #[test]
    fn interference_accumulates() {
        let p = ChannelParams::paper_defaults();
        let out = sinr_of(&p, 3.0, [1.0, 1.0, 1.0]);
        assert!((out.sinr - 1.0).abs() < 1e-12);
        assert!(out.success);
    }

    #[test]
    fn noise_participates_in_denominator() {
        let p = ChannelParams::new(3.0, 1.0, 1.0, 2.0);
        let out = sinr_of(&p, 3.0, [1.0]);
        assert!((out.sinr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_signal_fails_against_any_interference() {
        let p = ChannelParams::paper_defaults();
        let out = sinr_of(&p, 0.0, [1e-30]);
        assert_eq!(out.sinr, 0.0);
        assert!(!out.success);
    }
}
