//! Log-normal shadowing on top of fast fading.
//!
//! Large-scale obstructions multiply the *local-mean* received power by
//! a log-normal factor `10^{σ·Z/10}`, `Z ~ N(0,1)`, with `σ` in dB
//! (typically 4–12 dB outdoors). The paper's model captures only fast
//! (Rayleigh) fading; composing it with shadowing lets the extension
//! experiments measure how sensitive the `1 − ε` guarantee is to
//! slow-fading mis-modeling.
//!
//! The composed channel draws, per (sender, receiver) pair, a shadowing
//! factor that is *fixed for a realization lifetime* (shadowing is
//! quasi-static) and a fresh Rayleigh gain per slot.

use crate::params::ChannelParams;
use crate::rayleigh::RayleighChannel;
use fading_math::Exponential;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Rayleigh fast fading composed with quasi-static log-normal shadowing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowedRayleigh {
    /// Physical constants.
    pub params: ChannelParams,
    /// Shadowing standard deviation in dB (`0` disables shadowing).
    pub sigma_db: f64,
}

impl ShadowedRayleigh {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics if `sigma_db` is negative or non-finite.
    pub fn new(params: ChannelParams, sigma_db: f64) -> Self {
        assert!(
            sigma_db.is_finite() && sigma_db >= 0.0,
            "shadowing σ must be non-negative dB, got {sigma_db}"
        );
        Self { params, sigma_db }
    }

    /// Draws one quasi-static shadowing factor `10^{σZ/10}`.
    pub fn sample_shadow_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma_db == 0.0 {
            return 1.0;
        }
        fading_obs::counter!("channel.shadowing.draws").incr();
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        10f64.powf(self.sigma_db * z / 10.0)
    }

    /// Samples an instantaneous gain at distance `d` given a previously
    /// drawn `shadow_factor` for this pair.
    pub fn sample_gain<R: Rng + ?Sized>(&self, rng: &mut R, d: f64, shadow_factor: f64) -> f64 {
        Exponential::with_mean(self.params.mean_gain(d) * shadow_factor).sample(rng)
    }

    /// The underlying no-shadowing Rayleigh channel.
    pub fn rayleigh(&self) -> RayleighChannel {
        RayleighChannel::new(self.params)
    }

    /// Mean of the shadowing factor, `exp((σ·ln10/10)²/2)` — shadowing
    /// is *not* mean-one in linear scale (it is median-one), which is
    /// why it biases link budgets.
    pub fn shadow_mean(&self) -> f64 {
        let s = self.sigma_db * std::f64::consts::LN_10 / 10.0;
        (s * s / 2.0).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_math::{seeded_rng, OnlineStats};

    #[test]
    fn zero_sigma_reduces_to_rayleigh() {
        let params = ChannelParams::paper_defaults();
        let sh = ShadowedRayleigh::new(params, 0.0);
        let mut rng = seeded_rng(1);
        assert_eq!(sh.sample_shadow_factor(&mut rng), 1.0);
        assert_eq!(sh.shadow_mean(), 1.0);
        // Gains with factor 1 have the Rayleigh mean.
        let d = 6.0;
        let mut stats = OnlineStats::new();
        for _ in 0..100_000 {
            stats.push(sh.sample_gain(&mut rng, d, 1.0));
        }
        let mean = params.mean_gain(d);
        assert!((stats.mean() - mean).abs() < 0.02 * mean);
    }

    #[test]
    fn shadow_factor_is_median_one_mean_above_one() {
        let sh = ShadowedRayleigh::new(ChannelParams::paper_defaults(), 8.0);
        let mut rng = seeded_rng(2);
        let mut samples: Vec<f64> = (0..100_000)
            .map(|_| sh.sample_shadow_factor(&mut rng))
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            (mean - sh.shadow_mean()).abs() < 0.1 * sh.shadow_mean(),
            "mean {mean} vs analytic {}",
            sh.shadow_mean()
        );
        assert!(mean > 1.0);
    }

    #[test]
    fn larger_sigma_spreads_the_factor() {
        let mut rng = seeded_rng(3);
        let mut spread = |sigma: f64| {
            let sh = ShadowedRayleigh::new(ChannelParams::paper_defaults(), sigma);
            let mut stats = OnlineStats::new();
            for _ in 0..50_000 {
                stats.push(sh.sample_shadow_factor(&mut rng).ln());
            }
            stats.std_dev()
        };
        let s4 = spread(4.0);
        let s12 = spread(12.0);
        assert!(s12 > 2.5 * s4, "σ=4 spread {s4}, σ=12 spread {s12}");
    }

    #[test]
    fn shadow_factor_scales_gain_mean() {
        let params = ChannelParams::paper_defaults();
        let sh = ShadowedRayleigh::new(params, 6.0);
        let mut rng = seeded_rng(4);
        let d = 10.0;
        let factor = 3.0;
        let mut stats = OnlineStats::new();
        for _ in 0..100_000 {
            stats.push(sh.sample_gain(&mut rng, d, factor));
        }
        let expect = params.mean_gain(d) * factor;
        assert!((stats.mean() - expect).abs() < 0.02 * expect);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_sigma() {
        ShadowedRayleigh::new(ChannelParams::paper_defaults(), -1.0);
    }
}
