//! Nakagami-m fading — the standard generalization of Rayleigh.
//!
//! Under Nakagami-m fading the received *power* is Gamma-distributed
//! with shape `m` and mean `P·d^{−α}`; `m = 1` recovers the paper's
//! Rayleigh model exactly (Gamma(1, θ) is exponential), `m > 1` models
//! milder fading (strong line-of-sight), `1/2 ≤ m < 1` more severe
//! fading. The paper's closed form (Theorem 3.1) holds only for
//! `m = 1`; this module provides exact sampling plus Monte-Carlo
//! estimation of success probabilities, so the extension experiments
//! can measure how Rayleigh-designed schedules (LDP/RLE) hold up when
//! the real channel is not exactly Rayleigh.

use crate::params::ChannelParams;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The Nakagami-m fading channel (power gains are Gamma(m, mean/m)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NakagamiChannel {
    /// Physical constants.
    pub params: ChannelParams,
    /// Shape parameter `m ≥ 1/2`; `1` is Rayleigh.
    pub m: f64,
}

impl NakagamiChannel {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics unless `m ≥ 0.5` (the Nakagami validity range).
    pub fn new(params: ChannelParams, m: f64) -> Self {
        assert!(
            m.is_finite() && m >= 0.5,
            "Nakagami shape must satisfy m ≥ 1/2, got {m}"
        );
        Self { params, m }
    }

    /// Samples the instantaneous received power at distance `d`:
    /// `Gamma(shape = m, scale = mean/m)`.
    pub fn sample_gain<R: Rng + ?Sized>(&self, rng: &mut R, d: f64) -> f64 {
        let mean = self.params.mean_gain(d);
        sample_gamma(rng, self.m, mean / self.m)
    }

    /// Monte-Carlo estimate of `Pr(X_j ≥ γ_th)` for a link of length
    /// `d_jj` under interferers at distances `interferer_distances`.
    pub fn estimate_success_probability<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        d_jj: f64,
        interferer_distances: &[f64],
        trials: u32,
    ) -> f64 {
        assert!(trials > 0, "at least one trial");
        let mut ok = 0u32;
        for _ in 0..trials {
            let signal = self.sample_gain(rng, d_jj);
            let interference: f64 = interferer_distances
                .iter()
                .map(|&d| self.sample_gain(rng, d))
                .sum();
            let denom = self.params.noise + interference;
            let success = if denom == 0.0 {
                true
            } else {
                signal / denom >= self.params.gamma_th
            };
            if success {
                ok += 1;
            }
        }
        ok as f64 / trials as f64
    }
}

/// Marsaglia–Tsang Gamma(shape, scale) sampling; for `shape < 1` uses
/// the Johnk boost `Gamma(a) = Gamma(a+1) · U^{1/a}`.
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(
        shape > 0.0 && scale > 0.0,
        "gamma parameters must be positive"
    );
    // Gamma variates drawn (the `shape < 1` boost counts both levels).
    fading_obs::counter!("channel.nakagami.draws").incr();
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(rng, shape + 1.0, scale) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let v = (1.0 + c * z).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rayleigh::RayleighChannel;
    use fading_math::{seeded_rng, OnlineStats};

    #[test]
    fn gamma_sampler_matches_moments() {
        let mut rng = seeded_rng(1);
        for &(shape, scale) in &[(0.7, 2.0), (1.0, 1.5), (3.0, 0.5), (10.0, 2.0)] {
            let mut stats = OnlineStats::new();
            for _ in 0..100_000 {
                stats.push(sample_gamma(&mut rng, shape, scale));
            }
            let mean = shape * scale;
            let var = shape * scale * scale;
            assert!(
                (stats.mean() - mean).abs() < 0.03 * mean,
                "shape {shape}: mean {} vs {mean}",
                stats.mean()
            );
            assert!(
                (stats.variance() - var).abs() < 0.08 * var,
                "shape {shape}: var {} vs {var}",
                stats.variance()
            );
        }
    }

    #[test]
    fn m_equal_one_is_rayleigh() {
        // Gain distribution at m=1 must match the exponential model:
        // compare empirical CDF at a few points.
        let params = ChannelParams::paper_defaults();
        let nak = NakagamiChannel::new(params, 1.0);
        let ray = RayleighChannel::new(params);
        let mut rng = seeded_rng(2);
        let d = 7.0;
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| nak.sample_gain(&mut rng, d)).collect();
        let mean = params.mean_gain(d);
        for &x in &[0.5 * mean, mean, 2.0 * mean] {
            let emp = samples.iter().filter(|&&g| g <= x).count() as f64 / n as f64;
            let analytic = 1.0 - (-x / mean).exp();
            assert!(
                (emp - analytic).abs() < 0.01,
                "CDF at {x}: {emp} vs {analytic}"
            );
        }
        // And the success probability agrees with Theorem 3.1.
        let interferers = [20.0, 35.0];
        let closed = ray.success_probability(d, interferers.iter().copied());
        let est = nak.estimate_success_probability(&mut rng, d, &interferers, 100_000);
        assert!(
            (est - closed).abs() < 0.01,
            "Nakagami(1) {est} vs Rayleigh closed form {closed}"
        );
    }

    #[test]
    fn larger_m_means_milder_fading() {
        // With a healthy mean-SINR margin, success probability should
        // increase with m (less variance around the mean).
        let params = ChannelParams::paper_defaults();
        let mut rng = seeded_rng(3);
        let d = 5.0;
        let interferers = [18.0, 40.0];
        let p_half = NakagamiChannel::new(params, 0.5).estimate_success_probability(
            &mut rng,
            d,
            &interferers,
            60_000,
        );
        let p_one = NakagamiChannel::new(params, 1.0).estimate_success_probability(
            &mut rng,
            d,
            &interferers,
            60_000,
        );
        let p_four = NakagamiChannel::new(params, 4.0).estimate_success_probability(
            &mut rng,
            d,
            &interferers,
            60_000,
        );
        assert!(
            p_half < p_one && p_one < p_four,
            "m=0.5:{p_half} m=1:{p_one} m=4:{p_four}"
        );
    }

    #[test]
    fn gains_are_positive_and_mean_preserving() {
        let params = ChannelParams::paper_defaults();
        let nak = NakagamiChannel::new(params, 2.5);
        let mut rng = seeded_rng(4);
        let d = 10.0;
        let mut stats = OnlineStats::new();
        for _ in 0..50_000 {
            let g = nak.sample_gain(&mut rng, d);
            assert!(g > 0.0 && g.is_finite());
            stats.push(g);
        }
        let mean = params.mean_gain(d);
        assert!((stats.mean() - mean).abs() < 0.03 * mean);
    }

    #[test]
    #[should_panic(expected = "m ≥ 1/2")]
    fn rejects_small_m() {
        NakagamiChannel::new(ChannelParams::paper_defaults(), 0.3);
    }
}
