//! The classical deterministic SINR (physical interference) model.
//!
//! This is the model assumed by the ApproxLogN and ApproxDiversity
//! baselines: the signal transmitted at power `P` is received at
//! distance `d` with *exactly* strength `P·d^{−α}`. A transmission
//! succeeds iff `P·d_jj^{−α} / (N₀ + Σ_i P·d_ij^{−α}) ≥ γ_th`.
//!
//! The paper's point is precisely that schedules deemed feasible under
//! this model can fail under Rayleigh fading; the simulator pairs
//! deterministically-feasible schedules with fading realizations to
//! count those failures (Fig. 5).

use crate::params::ChannelParams;
use fading_math::KahanSum;
use serde::{Deserialize, Serialize};

/// The deterministic SINR channel.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DeterministicSinr {
    /// Physical constants.
    pub params: ChannelParams,
}

impl DeterministicSinr {
    /// Creates the model over the given parameters.
    pub fn new(params: ChannelParams) -> Self {
        Self { params }
    }

    /// Deterministic received power at distance `d`: `P·d^{−α}`.
    #[inline]
    pub fn gain(&self, d: f64) -> f64 {
        self.params.mean_gain(d)
    }

    /// Deterministic SINR of a link of length `d_jj` under interferers
    /// at distances `d_ij`. Returns `+∞` when there is neither noise nor
    /// interference.
    pub fn sinr<I>(&self, d_jj: f64, interferer_distances: I) -> f64
    where
        I: IntoIterator<Item = f64>,
    {
        let interference =
            KahanSum::sum_iter(interferer_distances.into_iter().map(|d| self.gain(d)));
        let denom = self.params.noise + interference;
        if denom == 0.0 {
            f64::INFINITY
        } else {
            self.gain(d_jj) / denom
        }
    }

    /// Whether the link meets the decoding threshold in this model.
    pub fn is_feasible<I>(&self, d_jj: f64, interferer_distances: I) -> bool
    where
        I: IntoIterator<Item = f64>,
    {
        self.sinr(d_jj, interferer_distances) >= self.params.gamma_th
    }

    /// The *relative interference* of a sender at distance `d_ij` on a
    /// receiver with link length `d_jj`, normalized so that a link is
    /// feasible (with zero noise) iff the relative interferences sum to
    /// at most 1:
    /// `ri_{i,j} = γ_th · (d_jj / d_ij)^α`.
    ///
    /// This is the deterministic analogue of the paper's interference
    /// factor (it is exactly `e^{f_{i,j}} − 1`), and is the quantity the
    /// ApproxDiversity baseline budgets.
    #[inline]
    pub fn relative_interference(&self, d_ij: f64, d_jj: f64) -> f64 {
        assert!(
            d_ij > 0.0 && d_jj > 0.0,
            "relative interference needs positive distances"
        );
        self.params.gamma_th * self.params.pow_alpha(d_jj / d_ij)
    }

    /// Feasibility via the relative-interference budget (zero-noise
    /// equivalent of [`Self::is_feasible`]): `Σ ri_{i,j} ≤ 1`.
    pub fn within_budget<I>(&self, d_jj: f64, interferer_distances: I, budget: f64) -> bool
    where
        I: IntoIterator<Item = f64>,
    {
        KahanSum::sum_iter(
            interferer_distances
                .into_iter()
                .map(|d| self.relative_interference(d, d_jj)),
        ) <= budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn chan() -> DeterministicSinr {
        DeterministicSinr::new(ChannelParams::paper_defaults())
    }

    #[test]
    fn sinr_matches_hand_computation() {
        let c = chan(); // α=3, P=1, N₀=0
                        // d_jj=2 → S = 1/8; interferers at 4 and 8 → I = 1/64 + 1/512.
        let sinr = c.sinr(2.0, [4.0, 8.0]);
        let expect = (1.0 / 8.0) / (1.0 / 64.0 + 1.0 / 512.0);
        assert!((sinr - expect).abs() < 1e-12);
    }

    #[test]
    fn no_interference_no_noise_is_infinite() {
        assert_eq!(chan().sinr(5.0, std::iter::empty()), f64::INFINITY);
        assert!(chan().is_feasible(5.0, std::iter::empty()));
    }

    #[test]
    fn noise_bounds_sinr() {
        let c = DeterministicSinr::new(ChannelParams::new(3.0, 1.0, 1.0, 0.5));
        let sinr = c.sinr(1.0, std::iter::empty());
        assert!((sinr - 2.0).abs() < 1e-12);
    }

    #[test]
    fn feasibility_threshold() {
        let c = chan();
        // Single interferer: feasible iff (d_jj/d_ij)^α ≤ 1/γ_th,
        // i.e. d_ij ≥ d_jj with γ_th = 1.
        assert!(c.is_feasible(5.0, [5.0]));
        assert!(c.is_feasible(5.0, [5.1]));
        assert!(!c.is_feasible(5.0, [4.9]));
    }

    #[test]
    fn relative_interference_is_exp_of_factor_minus_one() {
        let c = chan();
        let ray = crate::rayleigh::RayleighChannel::new(c.params);
        for (d_ij, d_jj) in [(10.0, 5.0), (7.0, 7.0), (100.0, 5.0)] {
            let ri = c.relative_interference(d_ij, d_jj);
            let f = ray.interference_factor(d_ij, d_jj);
            assert!((ri - (f.exp() - 1.0)).abs() < 1e-12 * (1.0 + ri));
        }
    }

    #[test]
    fn budget_check_equals_sinr_check_when_noiseless() {
        let c = chan();
        let cases: [(f64, Vec<f64>); 3] = [
            (5.0, vec![6.0, 30.0]),
            (5.0, vec![4.0]),
            (12.0, vec![40.0, 41.0, 42.0, 43.0]),
        ];
        for (d_jj, ds) in cases {
            assert_eq!(
                c.is_feasible(d_jj, ds.iter().copied()),
                c.within_budget(d_jj, ds.iter().copied(), 1.0),
                "d_jj={d_jj} ds={ds:?}"
            );
        }
    }

    proptest! {
        #[test]
        fn sinr_decreases_with_more_interference(
            d_jj in 0.1f64..50.0,
            ds in proptest::collection::vec(0.1f64..1e3, 1..20),
        ) {
            let c = chan();
            let fewer = c.sinr(d_jj, ds[1..].iter().copied());
            let more = c.sinr(d_jj, ds.iter().copied());
            prop_assert!(more <= fewer);
        }

        #[test]
        fn budget_equivalence_holds_generally(
            d_jj in 0.1f64..50.0,
            ds in proptest::collection::vec(0.1f64..1e3, 0..20),
            alpha in 2.1f64..5.0,
            gamma in 0.1f64..4.0,
        ) {
            let c = DeterministicSinr::new(ChannelParams::new(alpha, gamma, 1.0, 0.0));
            prop_assert_eq!(
                c.is_feasible(d_jj, ds.iter().copied()),
                c.within_budget(d_jj, ds.iter().copied(), 1.0)
            );
        }
    }
}
