//! Ergodic Shannon capacity under Rayleigh fading.
//!
//! Theorem 3.1's derivation gives more than a threshold test: for *any*
//! `x ≥ 0` (zero noise),
//!
//! `Pr(X_j ≥ x) = Π_i 1/(1 + x (d_jj/d_ij)^α)`,
//!
//! i.e. the full complementary CDF of the SINR. The ergodic (mean)
//! Shannon rate of a link then follows by the layer-cake formula
//!
//! `E[log₂(1+X)] = (1/ln 2) ∫₀^∞ Pr(X ≥ x)/(1+x) dx`,
//!
//! evaluated with adaptive quadrature. This powers the E-series
//! experiment comparing the paper's fixed-rate objective against a
//! rate-adaptive (Shannon) view of the same schedules.

use crate::params::ChannelParams;
use fading_math::integrate_to_infinity;

/// Complementary CDF of the SINR of a link with length `d_jj` under
/// concurrent interferers at distances `interferer_distances`
/// (Theorem 3.1 generalized from `γ_th` to arbitrary `x`).
///
/// # Panics
/// Panics if `x < 0` or any distance is non-positive.
pub fn sinr_ccdf(params: &ChannelParams, d_jj: f64, interferer_distances: &[f64], x: f64) -> f64 {
    assert!(x >= 0.0, "SINR threshold must be non-negative, got {x}");
    assert!(d_jj > 0.0, "link length must be positive");
    interferer_distances
        .iter()
        .map(|&d_ij| {
            assert!(d_ij > 0.0, "interferer distance must be positive");
            1.0 / (1.0 + x * params.pow_alpha(d_jj / d_ij))
        })
        .product()
}

/// Ergodic Shannon rate `E[log₂(1 + X_j)]` in bits/s/Hz.
///
/// Returns `+∞` when there are no interferers (zero noise ⇒ infinite
/// SINR almost surely).
pub fn ergodic_capacity(params: &ChannelParams, d_jj: f64, interferer_distances: &[f64]) -> f64 {
    if interferer_distances.is_empty() {
        return f64::INFINITY;
    }
    let integrand = |x: f64| sinr_ccdf(params, d_jj, interferer_distances, x) / (1.0 + x);
    integrate_to_infinity(&integrand, 0.0, 1e-9) / std::f64::consts::LN_2
}

/// Outage probability at threshold `x`: `Pr(X_j < x) = 1 − CCDF(x)`.
pub fn outage_probability(
    params: &ChannelParams,
    d_jj: f64,
    interferer_distances: &[f64],
    x: f64,
) -> f64 {
    1.0 - sinr_ccdf(params, d_jj, interferer_distances, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rayleigh::RayleighChannel;
    use fading_math::{seeded_rng, OnlineStats};

    fn params() -> ChannelParams {
        ChannelParams::paper_defaults()
    }

    #[test]
    fn ccdf_at_gamma_th_matches_theorem_3_1() {
        let p = params();
        let ray = RayleighChannel::new(p);
        let d_jj = 7.0;
        let ds = [20.0, 33.0, 51.0];
        let via_ccdf = sinr_ccdf(&p, d_jj, &ds, p.gamma_th);
        let via_thm = ray.success_probability(d_jj, ds.iter().copied());
        assert!((via_ccdf - via_thm).abs() < 1e-12);
    }

    #[test]
    fn ccdf_properties() {
        let p = params();
        let ds = [15.0, 40.0];
        assert_eq!(sinr_ccdf(&p, 5.0, &ds, 0.0), 1.0);
        let mut prev = 1.0;
        for i in 1..40 {
            let x = i as f64;
            let c = sinr_ccdf(&p, 5.0, &ds, x);
            assert!(c <= prev && (0.0..=1.0).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn capacity_matches_monte_carlo() {
        let p = params();
        let ray = RayleighChannel::new(p);
        let d_jj = 6.0;
        let ds = [18.0, 25.0, 60.0];
        let analytic = ergodic_capacity(&p, d_jj, &ds);
        let mut rng = seeded_rng(8);
        let mut stats = OnlineStats::new();
        for _ in 0..200_000 {
            let signal = ray.sample_gain(&mut rng, d_jj);
            let interference: f64 = ds.iter().map(|&d| ray.sample_gain(&mut rng, d)).sum();
            stats.push((1.0 + signal / interference).log2());
        }
        let rel = (stats.mean() - analytic).abs() / analytic;
        assert!(
            rel < 0.02,
            "Monte-Carlo {} vs quadrature {analytic} (rel {rel})",
            stats.mean()
        );
    }

    #[test]
    fn capacity_increases_as_interferers_recede() {
        let p = params();
        let near = ergodic_capacity(&p, 5.0, &[15.0, 20.0]);
        let far = ergodic_capacity(&p, 5.0, &[150.0, 200.0]);
        assert!(far > near, "{far} vs {near}");
    }

    #[test]
    fn no_interference_is_infinite() {
        assert_eq!(ergodic_capacity(&params(), 5.0, &[]), f64::INFINITY);
    }

    #[test]
    fn outage_complements_ccdf() {
        let p = params();
        let ds = [22.0, 31.0];
        for x in [0.1, 1.0, 5.0] {
            let sum = outage_probability(&p, 6.0, &ds, x) + sinr_ccdf(&p, 6.0, &ds, x);
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn capacity_grows_with_alpha_when_interferers_are_far() {
        // Far interferers attenuate faster than the (short) desired link
        // suffers, so higher α helps.
        let d_jj = 5.0;
        let ds = [60.0, 80.0];
        let lo = ergodic_capacity(&ChannelParams::with_alpha(2.5), d_jj, &ds);
        let hi = ergodic_capacity(&ChannelParams::with_alpha(4.5), d_jj, &ds);
        assert!(hi > lo, "{hi} vs {lo}");
    }
}
