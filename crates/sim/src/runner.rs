//! The Fig. 5 / Fig. 6 sweeps.
//!
//! For every sweep value and every scheduler: generate `instances`
//! topologies, compute the schedule once per topology (the algorithms
//! are deterministic), then Monte-Carlo the channel `trials` times per
//! topology, and aggregate into a [`ResultRow`].

use crate::config::ExperimentConfig;
use crate::monte_carlo::{simulate_many, MonteCarloStats};
use crate::results::{aggregate_row, ResultRow, ResultTable};
use fading_channel::ChannelParams;
use fading_core::{Problem, Scheduler};
use fading_math::split_seed;
use fading_net::TopologyGenerator;
use rayon::prelude::*;

/// Which parameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepAxis {
    /// Number of links `N` (Fig. 5(a)/6(a)); `α` fixed at the default.
    NumLinks,
    /// Path-loss exponent `α` (Fig. 5(b)/6(b)); `N` fixed at the default.
    Alpha,
}

/// Runs the sweep selected by `axis` (dispatches to [`sweep_n`] /
/// [`sweep_alpha`]).
pub fn sweep(
    config: &ExperimentConfig,
    axis: SweepAxis,
    schedulers: &[&dyn Scheduler],
) -> ResultTable {
    match axis {
        SweepAxis::NumLinks => sweep_n(config, schedulers),
        SweepAxis::Alpha => sweep_alpha(config, schedulers),
    }
}

fn measure_point(
    config: &ExperimentConfig,
    n: usize,
    alpha: f64,
    scheduler: &dyn Scheduler,
    point_seed: u64,
    batch: &crate::batch::BatchRunner,
) -> Vec<MonteCarloStats> {
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    fading_obs::gauge("sim.runner.threads").set(threads as f64);
    // Summed per-instance busy time; divided by a point's wall time ×
    // thread count it gives the instance-parallelism occupancy.
    let busy_ms = fading_obs::counter!("sim.runner.instance_busy_ms");
    // Instances are independent and seeded, so evaluate them in
    // parallel; results are position-stable and bit-identical to the
    // sequential order.
    (0..config.instances)
        .into_par_iter()
        .map(|k| {
            let started = std::time::Instant::now();
            let inst_seed = split_seed(point_seed, k as u64);
            let links = config.generator(n).generate(inst_seed);
            let params = ChannelParams::new(alpha, config.gamma_th, 1.0, 0.0);
            let problem = Problem::builder(links, params)
                .epsilon(config.epsilon)
                .backend(config.interference)
                .build();
            let schedule = {
                let _span = fading_obs::span!("scheduler");
                batch.schedule(scheduler, &problem)
            };
            let stats = {
                let _span = fading_obs::span!("simulation");
                simulate_many(&problem, &schedule, config.trials, split_seed(inst_seed, 1))
            };
            busy_ms.add(started.elapsed().as_millis() as u64);
            stats
        })
        .collect()
}

/// Per-sweep progress and timing state shared by [`sweep_n`] /
/// [`sweep_alpha`].
struct SweepMeter {
    progress: fading_obs::Progress,
    point_ms: fading_obs::Histogram,
    last_point_ms: fading_obs::Gauge,
    done: u64,
    trials_done: u64,
}

impl SweepMeter {
    fn new(points: u64) -> Self {
        Self {
            progress: fading_obs::Progress::new("point", "trials", points),
            point_ms: fading_obs::histogram(
                "sim.runner.point_ms",
                &[10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0],
            ),
            last_point_ms: fading_obs::gauge("sim.runner.last_point_ms"),
            done: 0,
            trials_done: 0,
        }
    }
}

/// Measures one sweep point and aggregates it into a row, recording
/// wall time, progress, and a structured event along the way.
#[allow(clippy::too_many_arguments)]
fn measured_row(
    config: &ExperimentConfig,
    n: usize,
    alpha: f64,
    scheduler: &dyn Scheduler,
    point_seed: u64,
    axis_label: &'static str,
    x: f64,
    meter: &mut SweepMeter,
    batch: &crate::batch::BatchRunner,
) -> ResultRow {
    let started = std::time::Instant::now();
    let stats = measure_point(config, n, alpha, scheduler, point_seed, batch);
    let row = {
        let _span = fading_obs::span!("aggregation");
        aggregate_row(axis_label, x, scheduler.name(), &stats)
    };
    let ms = started.elapsed().as_secs_f64() * 1e3;
    meter.point_ms.record(ms);
    meter.last_point_ms.set(ms);
    let point_trials = config.trials * config.instances as u64;
    meter.done += 1;
    meter.trials_done += point_trials;
    meter.progress.report(
        meter.done,
        &format!("{axis_label}={x} · scheduler={}", scheduler.name()),
        meter.trials_done,
    );
    fading_obs::emit_event(
        "sweep_point",
        &[
            ("axis", axis_label.into()),
            ("x", x.into()),
            ("scheduler", scheduler.name().into()),
            ("wall_ms", ms.into()),
            ("trials", point_trials.into()),
        ],
    );
    row
}

/// Sweeps `N` over `config.n_values` at `config.default_alpha`
/// (Fig. 5(a) failed-transmission series and Fig. 6(a) throughput
/// series, depending on which columns the caller reads).
pub fn sweep_n(config: &ExperimentConfig, schedulers: &[&dyn Scheduler]) -> ResultTable {
    let mut meter = SweepMeter::new((config.n_values.len() * schedulers.len()) as u64);
    // One workspace pool for the whole sweep: the largest point sizes
    // the arenas once and every later point reuses them.
    let batch = crate::batch::BatchRunner::new();
    let mut rows: Vec<ResultRow> = Vec::new();
    for (xi, &n) in config.n_values.iter().enumerate() {
        // One seed per sweep point: every scheduler is evaluated on the
        // same topologies (paired comparison, as in the paper).
        let point_seed = split_seed(config.seed, xi as u64);
        for scheduler in schedulers {
            rows.push(measured_row(
                config,
                n,
                config.default_alpha,
                *scheduler,
                point_seed,
                "N",
                n as f64,
                &mut meter,
                &batch,
            ));
        }
    }
    ResultTable::new(rows)
}

/// Sweeps `α` over `config.alpha_values` at `config.default_n`
/// (Fig. 5(b)/6(b)).
pub fn sweep_alpha(config: &ExperimentConfig, schedulers: &[&dyn Scheduler]) -> ResultTable {
    let mut meter = SweepMeter::new((config.alpha_values.len() * schedulers.len()) as u64);
    // Shared workspace pool across every point of the sweep.
    let batch = crate::batch::BatchRunner::new();
    let mut rows: Vec<ResultRow> = Vec::new();
    for (xi, &alpha) in config.alpha_values.iter().enumerate() {
        // One seed per sweep point (paired comparison across schedulers).
        let point_seed = split_seed(config.seed, (900_000 + xi) as u64);
        for scheduler in schedulers {
            rows.push(measured_row(
                config,
                config.default_n,
                alpha,
                *scheduler,
                point_seed,
                "alpha",
                alpha,
                &mut meter,
                &batch,
            ));
        }
    }
    ResultTable::new(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_core::algo::{ApproxLogN, Ldp, Rle};

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            n_values: vec![50, 150],
            alpha_values: vec![3.0, 4.0],
            default_n: 100,
            default_alpha: 3.0,
            instances: 2,
            trials: 50,
            ..ExperimentConfig::paper()
        }
    }

    #[test]
    fn sweep_n_produces_rows_per_point_and_algorithm() {
        let cfg = tiny_config();
        let table = sweep_n(&cfg, &[&Rle::new(), &Ldp::new()]);
        assert_eq!(table.rows.len(), 4); // 2 N values × 2 algorithms
        assert_eq!(table.series("RLE").len(), 2);
        assert_eq!(table.series("LDP").len(), 2);
        for r in &table.rows {
            assert_eq!(r.x_label, "N");
            assert_eq!(r.instances, 2);
            assert_eq!(r.trials, 50);
        }
    }

    #[test]
    fn sweep_alpha_produces_rows_per_point() {
        let cfg = tiny_config();
        let table = sweep_alpha(&cfg, &[&Rle::new()]);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.rows[0].x, 3.0);
        assert_eq!(table.rows[1].x, 4.0);
        assert_eq!(table.rows[0].x_label, "alpha");
    }

    #[test]
    fn sweep_dispatch_matches_named_functions() {
        let cfg = tiny_config();
        assert_eq!(
            sweep(&cfg, SweepAxis::NumLinks, &[&Rle::new()]),
            sweep_n(&cfg, &[&Rle::new()])
        );
        assert_eq!(
            sweep(&cfg, SweepAxis::Alpha, &[&Rle::new()]),
            sweep_alpha(&cfg, &[&Rle::new()])
        );
    }

    #[test]
    fn sweeps_are_deterministic() {
        let cfg = tiny_config();
        let a = sweep_n(&cfg, &[&Rle::new()]);
        let b = sweep_n(&cfg, &[&Rle::new()]);
        assert_eq!(a, b);
    }

    #[test]
    fn fading_resistant_beats_baseline_on_failures() {
        // Miniature Fig. 5(a): RLE near-zero failures, ApproxLogN not.
        let cfg = ExperimentConfig {
            n_values: vec![300],
            instances: 3,
            trials: 200,
            ..ExperimentConfig::paper()
        };
        let table = sweep_n(&cfg, &[&Rle::new(), &ApproxLogN]);
        let rle = &table.series("RLE")[0];
        let logn = &table.series("ApproxLogN")[0];
        assert!(
            rle.failed_mean <= 0.05 * rle.scheduled_mean.max(1.0),
            "RLE failures {} too high",
            rle.failed_mean
        );
        assert!(
            logn.failed_mean > rle.failed_mean,
            "baseline ({}) should fail more than RLE ({})",
            logn.failed_mean,
            rle.failed_mean
        );
    }
}
