//! Robustness experiments beyond the paper's Rayleigh assumption.
//!
//! The paper's guarantee is exact *only* under Rayleigh fading with no
//! noise. These harnesses measure how LDP/RLE schedules behave when the
//! real channel deviates:
//!
//! * [`simulate_many_nakagami`] — the fast fading is Nakagami-m rather
//!   than Rayleigh (`m = 1` recovers the paper's model exactly);
//! * [`simulate_many_shadowed`] — quasi-static log-normal shadowing is
//!   layered on top of Rayleigh;
//! * [`drift_reliability`] — the topology drifts under random-waypoint
//!   mobility after the schedule was computed;
//! * [`sinr_histogram`] — the realized SINR distribution of a schedule.

use crate::monte_carlo::MonteCarloStats;
use fading_channel::{sinr_of, NakagamiChannel, ShadowedRayleigh};
use fading_core::{FeasibilityReport, Problem, Schedule};
use fading_math::{seeded_rng, split_seed, Histogram, OnlineStats};
use fading_net::RandomWaypoint;
use rayon::prelude::*;

/// Monte-Carlo evaluation of `schedule` when the fast fading is
/// Nakagami-m instead of Rayleigh.
pub fn simulate_many_nakagami(
    problem: &Problem,
    schedule: &Schedule,
    m: f64,
    trials: u64,
    base_seed: u64,
) -> MonteCarloStats {
    assert!(trials > 0, "at least one trial is required");
    let channel = NakagamiChannel::new(*problem.params(), m);
    let links = problem.links();
    let (failed, throughput) = (0..trials)
        .into_par_iter()
        .fold(
            || (OnlineStats::new(), OnlineStats::new()),
            |(mut f, mut th), t| {
                let mut rng = seeded_rng(split_seed(base_seed, t));
                let mut failed_count = 0u32;
                let mut delivered = 0.0;
                for j in schedule.iter() {
                    let signal = channel.sample_gain(&mut rng, links.length(j));
                    let interference = schedule.iter().filter(|&i| i != j).map(|i| {
                        channel.sample_gain(&mut rng, links.sender_receiver_distance(i, j))
                    });
                    if sinr_of(problem.params(), signal, interference).success {
                        delivered += problem.rate(j);
                    } else {
                        failed_count += 1;
                    }
                }
                f.push(failed_count as f64);
                th.push(delivered);
                (f, th)
            },
        )
        .reduce(
            || (OnlineStats::new(), OnlineStats::new()),
            |(mut f1, mut t1), (f2, t2)| {
                f1.merge(&f2);
                t1.merge(&t2);
                (f1, t1)
            },
        );
    MonteCarloStats {
        scheduled: schedule.len(),
        scheduled_rate: schedule.utility(problem),
        failed: failed.summary(),
        throughput: throughput.summary(),
    }
}

/// Monte-Carlo evaluation under Rayleigh fast fading composed with
/// quasi-static log-normal shadowing of `sigma_db`: each trial draws a
/// fresh shadowing realization (one factor per sender→receiver pair in
/// the schedule), then one fast-fading realization on top of it.
pub fn simulate_many_shadowed(
    problem: &Problem,
    schedule: &Schedule,
    sigma_db: f64,
    trials: u64,
    base_seed: u64,
) -> MonteCarloStats {
    assert!(trials > 0, "at least one trial is required");
    let channel = ShadowedRayleigh::new(*problem.params(), sigma_db);
    let links = problem.links();
    let members: Vec<_> = schedule.iter().collect();
    let (failed, throughput) =
        (0..trials)
            .into_par_iter()
            .fold(
                || (OnlineStats::new(), OnlineStats::new()),
                |(mut f, mut th), t| {
                    let mut rng = seeded_rng(split_seed(base_seed, t));
                    // Quasi-static shadowing: one factor per (i, j) pair,
                    // fixed for the whole realization.
                    let k = members.len();
                    let mut shadow = vec![1.0f64; k * k];
                    for v in shadow.iter_mut() {
                        *v = channel.sample_shadow_factor(&mut rng);
                    }
                    let mut failed_count = 0u32;
                    let mut delivered = 0.0;
                    for (jj, &j) in members.iter().enumerate() {
                        let signal =
                            channel.sample_gain(&mut rng, links.length(j), shadow[jj * k + jj]);
                        let interference =
                            members.iter().enumerate().filter(|&(ii, _)| ii != jj).map(
                                |(ii, &i)| {
                                    channel.sample_gain(
                                        &mut rng,
                                        links.sender_receiver_distance(i, j),
                                        shadow[ii * k + jj],
                                    )
                                },
                            );
                        if sinr_of(problem.params(), signal, interference).success {
                            delivered += problem.rate(j);
                        } else {
                            failed_count += 1;
                        }
                    }
                    f.push(failed_count as f64);
                    th.push(delivered);
                    (f, th)
                },
            )
            .reduce(
                || (OnlineStats::new(), OnlineStats::new()),
                |(mut f1, mut t1), (f2, t2)| {
                    f1.merge(&f2);
                    t1.merge(&t2);
                    (f1, t1)
                },
            );
    MonteCarloStats {
        scheduled: schedule.len(),
        scheduled_rate: schedule.utility(problem),
        failed: failed.summary(),
        throughput: throughput.summary(),
    }
}

/// Expected failures per slot of a *fixed* schedule as the topology
/// drifts under random-waypoint mobility: entry `t` is the analytic
/// `Σ_j (1 − Pr(X_j ≥ γ_th))` (Theorem 3.1 — exact, no Monte-Carlo
/// needed) after `t` mobility steps of duration `dt`.
pub fn drift_reliability(
    problem: &Problem,
    schedule: &Schedule,
    speed: f64,
    dt: f64,
    steps: usize,
    seed: u64,
) -> Vec<f64> {
    let mut mobility = RandomWaypoint::new(problem.links(), speed, speed, seed);
    let mut out = Vec::with_capacity(steps + 1);
    let expected_failures = |p: &Problem| -> f64 {
        FeasibilityReport::evaluate(p, schedule)
            .entries()
            .iter()
            .map(|e| 1.0 - e.success_probability)
            .sum()
    };
    out.push(expected_failures(problem));
    for _ in 0..steps {
        let moved = mobility.step(dt);
        // Geometry changed, so factors must be recomputed — but the
        // drifted instance keeps the parent's ε, power scales, and
        // interference backend (a bare `Problem::new` silently dropped
        // all three).
        let drifted = problem.rebuild_with_links(moved);
        out.push(expected_failures(&drifted));
    }
    out
}

/// Burstiness statistics of a schedule under temporally correlated
/// fading (E12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstStats {
    /// Overall per-link, per-slot failure rate (should match the i.i.d.
    /// rate — correlation does not change the marginal).
    pub failure_rate: f64,
    /// Mean length of consecutive-failure runs, per link (1.0 = fully
    /// isolated losses).
    pub mean_burst_len: f64,
    /// Longest failure run observed on any link.
    pub max_burst_len: u32,
}

/// Simulates `slots` *consecutive* slots of `schedule` under
/// Gauss–Markov correlated Rayleigh fading with per-slot coefficient
/// correlation `rho` (`0` = the paper's i.i.d. slots), and returns
/// failure burstiness statistics.
pub fn burstiness(
    problem: &Problem,
    schedule: &Schedule,
    rho: f64,
    slots: u32,
    seed: u64,
) -> BurstStats {
    assert!(slots > 0, "need at least one slot");
    let channel = fading_channel::CorrelatedRayleigh::new(*problem.params(), rho);
    let links = problem.links();
    let members: Vec<_> = schedule.iter().collect();
    let k = members.len();
    let mut rng = seeded_rng(seed);
    // One correlated process per (sender i, receiver j) pair.
    let mut gains: Vec<fading_channel::CorrelatedGain> = Vec::with_capacity(k * k);
    for &j in &members {
        for &i in &members {
            let d = if i == j {
                links.length(j)
            } else {
                links.sender_receiver_distance(i, j)
            };
            gains.push(channel.init(&mut rng, d));
        }
    }
    let mut failures = 0u64;
    let mut run_len = vec![0u32; k];
    let mut bursts: Vec<u32> = Vec::new();
    let mut max_burst = 0u32;
    for _ in 0..slots {
        for (jj, _) in members.iter().enumerate() {
            let mut signal = 0.0;
            let mut interference = 0.0;
            for (ii, _) in members.iter().enumerate() {
                let p = gains[jj * k + ii].step(&mut rng);
                if ii == jj {
                    signal = p;
                } else {
                    interference += p;
                }
            }
            let denom = problem.params().noise + interference;
            let ok = denom == 0.0 || signal / denom >= problem.params().gamma_th;
            if ok {
                if run_len[jj] > 0 {
                    bursts.push(run_len[jj]);
                    run_len[jj] = 0;
                }
            } else {
                failures += 1;
                run_len[jj] += 1;
                max_burst = max_burst.max(run_len[jj]);
            }
        }
    }
    bursts.extend(run_len.into_iter().filter(|&r| r > 0));
    let mean_burst_len = if bursts.is_empty() {
        0.0
    } else {
        bursts.iter().map(|&b| b as f64).sum::<f64>() / bursts.len() as f64
    };
    BurstStats {
        failure_rate: failures as f64 / (slots as u64 * k.max(1) as u64) as f64,
        mean_burst_len,
        max_burst_len: max_burst,
    }
}

/// Histogram of realized SINRs (in dB) across `trials` realizations of
/// `schedule`. Range `[lo_db, hi_db]`.
pub fn sinr_histogram(
    problem: &Problem,
    schedule: &Schedule,
    trials: u64,
    seed: u64,
    bins: usize,
    lo_db: f64,
    hi_db: f64,
) -> Histogram {
    let mut hist = Histogram::new(lo_db, hi_db, bins);
    for t in 0..trials {
        let mut rng = seeded_rng(split_seed(seed, t));
        for (_, sinr) in crate::slot::realized_sinrs(problem, schedule, &mut rng) {
            if sinr.is_finite() && sinr > 0.0 {
                hist.record(10.0 * sinr.log10());
            }
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monte_carlo::simulate_many;
    use fading_core::algo::Rle;
    use fading_core::Scheduler;
    use fading_net::{TopologyGenerator, UniformGenerator};

    fn setup(n: usize, seed: u64) -> (Problem, Schedule) {
        let p = Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0);
        let s = Rle::new().schedule(&p);
        (p, s)
    }

    #[test]
    fn nakagami_m1_matches_rayleigh_statistics() {
        let (p, s) = setup(150, 1);
        let ray = simulate_many(&p, &s, 3000, 5);
        let nak = simulate_many_nakagami(&p, &s, 1.0, 3000, 6);
        assert!(
            (ray.failed.mean - nak.failed.mean).abs()
                <= 3.0 * (ray.failed.ci95 + nak.failed.ci95) + 0.02,
            "Rayleigh {} vs Nakagami(1) {}",
            ray.failed.mean,
            nak.failed.mean
        );
    }

    #[test]
    fn milder_fading_preserves_the_guarantee() {
        // m = 4 has less variance; an RLE schedule should fail no more
        // often than under Rayleigh.
        let (p, s) = setup(200, 2);
        let m1 = simulate_many_nakagami(&p, &s, 1.0, 2000, 7);
        let m4 = simulate_many_nakagami(&p, &s, 4.0, 2000, 8);
        assert!(
            m4.failed.mean <= m1.failed.mean + 2.0 * (m1.failed.ci95 + m4.failed.ci95) + 0.01,
            "m=4 {} vs m=1 {}",
            m4.failed.mean,
            m1.failed.mean
        );
    }

    #[test]
    fn shadowing_zero_sigma_matches_plain_rayleigh() {
        let (p, s) = setup(120, 3);
        let plain = simulate_many(&p, &s, 2000, 9);
        let shadowed = simulate_many_shadowed(&p, &s, 0.0, 2000, 10);
        assert!(
            (plain.failed.mean - shadowed.failed.mean).abs()
                <= 3.0 * (plain.failed.ci95 + shadowed.failed.ci95) + 0.02
        );
    }

    #[test]
    fn heavy_shadowing_erodes_the_guarantee() {
        // 8 dB shadowing must increase failures of a Rayleigh-designed
        // schedule (the mis-modeling penalty the extension quantifies).
        let (p, s) = setup(250, 4);
        let plain = simulate_many(&p, &s, 3000, 11);
        let shadowed = simulate_many_shadowed(&p, &s, 8.0, 3000, 12);
        assert!(
            shadowed.failed.mean > plain.failed.mean,
            "shadowed {} vs plain {}",
            shadowed.failed.mean,
            plain.failed.mean
        );
    }

    #[test]
    fn drift_starts_feasible_and_degrades() {
        let (p, s) = setup(200, 5);
        let curve = drift_reliability(&p, &s, 10.0, 1.0, 20, 13);
        assert_eq!(curve.len(), 21);
        // t = 0: the schedule honors ε per link.
        assert!(curve[0] <= p.epsilon() * s.len() as f64 * (1.0 + 1e-9));
        // Drift hurts on average: the tail of the curve exceeds the start.
        let tail_mean: f64 = curve[15..].iter().sum::<f64>() / 6.0;
        assert!(
            tail_mean >= curve[0],
            "expected degradation: start {} tail {}",
            curve[0],
            tail_mean
        );
    }

    #[test]
    fn burstiness_marginal_rate_is_correlation_invariant() {
        // Correlation reshapes failures into bursts but must not change
        // the per-slot failure rate (the marginal is still Rayleigh).
        let links = UniformGenerator::paper(250).generate(21);
        let p = Problem::paper(links, 3.0);
        let s = fading_core::algo::ApproxDiversity::new().schedule(&p);
        let iid = burstiness(&p, &s, 0.0, 3000, 5);
        let sticky = burstiness(&p, &s, 0.95, 3000, 6);
        assert!(
            (iid.failure_rate - sticky.failure_rate).abs() <= 0.3 * iid.failure_rate.max(0.005),
            "iid {} vs ρ=0.95 {}",
            iid.failure_rate,
            sticky.failure_rate
        );
        // …but bursts get longer.
        assert!(
            sticky.mean_burst_len > 1.3 * iid.mean_burst_len,
            "iid bursts {} vs sticky {}",
            iid.mean_burst_len,
            sticky.mean_burst_len
        );
    }

    #[test]
    fn burstiness_on_reliable_schedule_is_negligible() {
        let (p, s) = setup(150, 22);
        let b = burstiness(&p, &s, 0.9, 2000, 7);
        assert!(b.failure_rate < 0.01, "rate {}", b.failure_rate);
    }

    #[test]
    fn sinr_histogram_mass_sits_above_threshold_for_feasible_schedules() {
        let (p, s) = setup(150, 6);
        let hist = sinr_histogram(&p, &s, 200, 14, 40, -20.0, 60.0);
        assert!(hist.total() > 0);
        // γ_th = 1 = 0 dB: at least 99% of realized SINRs clear it.
        let below: u64 = (0..hist.num_bins())
            .filter(|&i| hist.bin_edges(i).1 <= 0.0)
            .map(|i| hist.bin_count(i))
            .sum::<u64>()
            + hist.underflow();
        let frac = below as f64 / hist.total() as f64;
        assert!(frac <= 0.011, "fraction below 0 dB: {frac}");
    }
}
