//! The online scheduling engine: a slot loop under link churn.
//!
//! The queueing simulator ([`crate::queueing`]) serves packets on a
//! *fixed* link population; real networks see links join and leave
//! ("millions of users joining and leaving", ROADMAP north star). A
//! [`ChurnEngine`] runs that regime on a live, incrementally mutated
//! [`Problem`]: Poisson link arrivals, exponential link lifetimes,
//! Bernoulli packet arrivals on the live links, per-slot scheduling of
//! the backlogged sub-instance under a [`ServicePolicy`], and Rayleigh
//! channel realizations deciding delivery — all seeded and
//! deterministic. Topology changes go through
//! [`Problem::add_links`] / [`Problem::remove_links`] (never a
//! rebuild), with a [`LinkIdMap`] keeping stable external handles
//! across the dense renumbering. See `docs/online.md`.

use crate::queueing::ServicePolicy;
use crate::slot::simulate_slot;
use fading_core::{LinkIdMap, LinkSpec, Problem, SchedCtx, Scheduler};
use fading_math::{seeded_rng, split_seed, OnlineStats};
use fading_net::{LinkId, UniformGenerator};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Configuration of a churn run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Number of simulated slots.
    pub slots: u64,
    /// Mean new links per slot (Poisson).
    pub link_arrival_rate: f64,
    /// Mean link lifetime in slots (exponential, ≥ 1 slot realized).
    pub mean_lifetime: f64,
    /// Per-live-link probability of one packet arrival per slot.
    pub packet_prob: f64,
    /// RNG seed; topology, packet, and channel streams derive from it.
    pub seed: u64,
}

impl ChurnConfig {
    /// Offered steady-state population `initial + λ·E[lifetime]`-ish
    /// sanity check helper: the equilibrium population of the M/G/∞
    /// arrival process alone (ignores the seed population draining).
    pub fn equilibrium_population(&self) -> f64 {
        self.link_arrival_rate * self.mean_lifetime
    }
}

/// What one [`ChurnEngine::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ChurnSlot {
    /// Slot index.
    pub slot: u64,
    /// Links that joined this slot.
    pub link_arrivals: u32,
    /// Links that departed this slot.
    pub link_departures: u32,
    /// Live links after churn.
    pub population: u32,
    /// Links scheduled for transmission.
    pub scheduled: u32,
    /// Packets that arrived this slot.
    pub packets_arrived: u32,
    /// Packets delivered.
    pub delivered: u32,
    /// Packets dropped with links that departed this slot.
    pub packets_abandoned: u64,
    /// Total backlog after service.
    pub backlog: u64,
}

/// Aggregate results of a churn run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ChurnResult {
    /// Simulated horizon.
    pub slots: u64,
    /// Links that joined over the run.
    pub links_arrived: u64,
    /// Links that departed over the run.
    pub links_departed: u64,
    /// Time-averaged live population.
    pub mean_population: f64,
    /// Live links when the run ended.
    pub final_population: usize,
    /// Packets that arrived.
    pub packets_arrived: u64,
    /// Packets delivered.
    pub packets_delivered: u64,
    /// Packets dropped because their link departed while they queued.
    pub packets_abandoned: u64,
    /// Time-averaged total backlog (after service, per slot).
    pub mean_backlog: f64,
    /// Largest backlog observed.
    pub max_backlog: u64,
    /// Backlog remaining at the end.
    pub final_backlog: u64,
    /// Sustained engine throughput: slots per wall-clock second over
    /// the whole run (churn + scheduling + channel realization).
    pub slots_per_sec: f64,
}

impl ChurnResult {
    /// Packet conservation: everything that arrived was delivered,
    /// abandoned with a departing link, or still queued.
    pub fn conserves_packets(&self) -> bool {
        self.packets_arrived == self.packets_delivered + self.packets_abandoned + self.final_backlog
    }
}

/// Per-link engine state, keyed by the link's stable external handle.
#[derive(Debug)]
struct LinkState {
    /// FIFO of packet arrival slots.
    queue: VecDeque<u64>,
    /// First slot at which the link is gone.
    departs_at: u64,
}

/// A long-running scheduling engine over a live, churning instance.
///
/// Owns the mutable [`Problem`], the external↔dense [`LinkIdMap`], all
/// per-link queues, and a warm [`SchedCtx`]. Drive it one
/// [`step`](Self::step) at a time (the CLI's progress loop does) or
/// use [`run`](Self::run) for a whole horizon.
#[derive(Debug)]
pub struct ChurnEngine {
    problem: Problem,
    map: LinkIdMap,
    states: HashMap<u64, LinkState>,
    geometry: UniformGenerator,
    cfg: ChurnConfig,
    /// Topology stream: arrival counts, positions, lifetimes.
    churn_rng: StdRng,
    /// Packet-arrival stream, separate so arrival patterns don't shift
    /// when churn parameters change.
    packet_rng: StdRng,
    ctx: SchedCtx,
    slot: u64,
    // scratch buffers reused across slots
    departing: Vec<LinkId>,
    backlogged: Vec<LinkId>,
}

impl ChurnEngine {
    /// Builds the engine over a seed instance (its links are the slot-0
    /// population; lifetimes for them are sampled like any arrival's).
    /// `geometry` shapes arriving links: sender uniform in its region,
    /// length `U[len_lo, len_hi]`, uniform direction — the same law the
    /// seed generator uses. Everything the problem was configured with
    /// (ε, channel, backend, power scales) rides along through the
    /// in-place mutations.
    ///
    /// # Panics
    /// Panics on a non-finite/negative arrival rate, a lifetime below
    /// one slot, `packet_prob` outside `[0, 1]`, or `slots == 0`.
    pub fn new(problem: Problem, geometry: UniformGenerator, cfg: ChurnConfig) -> Self {
        assert!(
            cfg.link_arrival_rate.is_finite() && cfg.link_arrival_rate >= 0.0,
            "link arrival rate must be finite and non-negative"
        );
        assert!(
            cfg.mean_lifetime >= 1.0,
            "mean lifetime must be at least one slot"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.packet_prob),
            "packet probability must be in [0,1]"
        );
        assert!(cfg.slots > 0, "need at least one slot");
        let n0 = problem.len();
        let mut churn_rng = seeded_rng(split_seed(cfg.seed, 0));
        let packet_rng = seeded_rng(split_seed(cfg.seed, 1));
        let map = LinkIdMap::with_len(n0);
        let mut states = HashMap::with_capacity(n0 * 2);
        for ext in 0..n0 as u64 {
            states.insert(
                ext,
                LinkState {
                    queue: VecDeque::new(),
                    departs_at: exponential_departure(0, cfg.mean_lifetime, &mut churn_rng),
                },
            );
        }
        let mut ctx = SchedCtx::new();
        ctx.prepare(n0);
        Self {
            problem,
            map,
            states,
            geometry,
            cfg,
            churn_rng,
            packet_rng,
            ctx,
            slot: 0,
            departing: Vec::new(),
            backlogged: Vec::new(),
        }
    }

    /// The live instance (mutated in place across steps).
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Number of live links.
    pub fn population(&self) -> usize {
        self.map.len()
    }

    /// Current slot index (number of completed steps).
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Advances one slot: departures → arrivals → packet arrivals →
    /// schedule the backlogged sub-instance → channel realization →
    /// service.
    pub fn step<S: Scheduler + ?Sized>(
        &mut self,
        scheduler: &S,
        policy: ServicePolicy,
    ) -> ChurnSlot {
        let _span = fading_obs::span!("sim.churn.slot");
        let t = self.slot;
        let mut abandoned = 0u64;

        // Departures: collect expired links in dense order (the only
        // deterministic iteration order), then remove in one batch —
        // `remove_links` picks the renumbering-safe descending order
        // and reports it so the id map can mirror each swap.
        self.departing.clear();
        for dense in 0..self.map.len() as u32 {
            let ext = self.map.external(LinkId(dense));
            if self.states[&ext].departs_at <= t {
                self.departing.push(LinkId(dense));
            }
        }
        let link_departures = self.departing.len() as u32;
        if !self.departing.is_empty() {
            let order = self.problem.remove_links(&self.departing);
            for dense in order {
                let ext = self.map.on_swap_remove(dense);
                let state = self.states.remove(&ext).expect("state tracks map");
                abandoned += state.queue.len() as u64;
            }
            fading_obs::counter!("sim.churn.link_departures").add(link_departures as u64);
        }

        // Arrivals: Poisson count, geometry sampled exactly like the
        // seed generator's (sender uniform in the region, length
        // U[lo, hi], uniform direction). Coordinate collisions are
        // measure-zero but possible under adversarial seeds; resample.
        let arrivals = poisson(self.cfg.link_arrival_rate, &mut self.churn_rng);
        for _ in 0..arrivals {
            let departs_at = exponential_departure(t, self.cfg.mean_lifetime, &mut self.churn_rng);
            let mut tries = 0;
            loop {
                let side = self.geometry.side;
                let s = fading_geom::Point2::new(
                    self.churn_rng.gen_range(0.0..side),
                    self.churn_rng.gen_range(0.0..side),
                );
                let d = self
                    .churn_rng
                    .gen_range(self.geometry.len_lo..=self.geometry.len_hi);
                let theta = self.churn_rng.gen_range(0.0..std::f64::consts::TAU);
                let spec = LinkSpec::new(s, s.offset_polar(d, theta));
                if self.problem.add_links(&[spec]).is_ok() {
                    let ext = self.map.on_add();
                    self.states.insert(
                        ext,
                        LinkState {
                            queue: VecDeque::new(),
                            departs_at,
                        },
                    );
                    break;
                }
                tries += 1;
                assert!(tries < 100, "could not place an arriving link");
            }
        }
        if arrivals > 0 {
            fading_obs::counter!("sim.churn.link_arrivals").add(arrivals as u64);
        }

        // Packet arrivals on the live population, dense order.
        let mut packets_arrived = 0u32;
        for dense in 0..self.map.len() as u32 {
            if self.packet_rng.gen::<f64>() < self.cfg.packet_prob {
                let ext = self.map.external(LinkId(dense));
                self.states
                    .get_mut(&ext)
                    .expect("state tracks map")
                    .queue
                    .push_back(t);
                packets_arrived += 1;
            }
        }

        // Schedule the backlogged sub-instance and realize the channel.
        self.backlogged.clear();
        for dense in 0..self.map.len() as u32 {
            let ext = self.map.external(LinkId(dense));
            if !self.states[&ext].queue.is_empty() {
                self.backlogged.push(LinkId(dense));
            }
        }
        let mut scheduled = 0u32;
        let mut delivered = 0u32;
        if !self.backlogged.is_empty() {
            let (sub, mapping) = self.problem.restrict(&self.backlogged);
            let sub = if policy == ServicePolicy::MaxWeight {
                let weights: Vec<f64> = mapping
                    .iter()
                    .map(|orig| {
                        let ext = self.map.external(*orig);
                        (self.states[&ext].queue.len() as f64).max(1e-9)
                    })
                    .collect();
                sub.with_link_rates(&weights)
            } else {
                sub
            };
            let schedule = scheduler.schedule_in(&sub, &mut self.ctx);
            scheduled = schedule.len() as u32;
            let mut channel_rng = seeded_rng(split_seed(self.cfg.seed, t + 2));
            let outcome = simulate_slot(&sub, &schedule, &mut channel_rng);
            for sub_id in outcome.successes {
                let ext = self.map.external(mapping[sub_id.index()]);
                if self
                    .states
                    .get_mut(&ext)
                    .expect("live")
                    .queue
                    .pop_front()
                    .is_some()
                {
                    delivered += 1;
                }
            }
            self.ctx.recycle(schedule);
        }

        let backlog: u64 = self
            .map
            .externals()
            .iter()
            .map(|ext| self.states[ext].queue.len() as u64)
            .sum();
        self.slot = t + 1;
        ChurnSlot {
            slot: t,
            link_arrivals: arrivals,
            link_departures,
            population: self.map.len() as u32,
            scheduled,
            packets_arrived,
            delivered,
            packets_abandoned: abandoned,
            backlog,
        }
    }

    /// Runs the configured horizon and aggregates, timing the loop for
    /// the sustained slots/sec figure.
    pub fn run<S: Scheduler + ?Sized>(
        mut self,
        scheduler: &S,
        policy: ServicePolicy,
    ) -> ChurnResult {
        let _span = fading_obs::span!("sim.churn.run");
        let progress = fading_obs::Progress::new("churn", "slots", self.cfg.slots);
        let mut population = OnlineStats::new();
        let mut backlog_stats = OnlineStats::new();
        let mut out = ChurnResult {
            slots: self.cfg.slots,
            links_arrived: 0,
            links_departed: 0,
            mean_population: 0.0,
            final_population: 0,
            packets_arrived: 0,
            packets_delivered: 0,
            packets_abandoned: 0,
            mean_backlog: 0.0,
            max_backlog: 0,
            final_backlog: 0,
            slots_per_sec: 0.0,
        };
        let started = std::time::Instant::now();
        for _ in 0..self.cfg.slots {
            let slot = self.step(scheduler, policy);
            out.links_arrived += slot.link_arrivals as u64;
            out.links_departed += slot.link_departures as u64;
            out.packets_arrived += slot.packets_arrived as u64;
            out.packets_delivered += slot.delivered as u64;
            out.packets_abandoned += slot.packets_abandoned;
            out.max_backlog = out.max_backlog.max(slot.backlog);
            out.final_backlog = slot.backlog;
            population.push(slot.population as f64);
            backlog_stats.push(slot.backlog as f64);
            progress.report(
                slot.slot + 1,
                &format!("pop {} backlog {}", slot.population, slot.backlog),
                slot.slot + 1,
            );
        }
        let elapsed = started.elapsed().as_secs_f64();
        out.mean_population = population.mean();
        out.mean_backlog = backlog_stats.mean();
        out.final_population = self.population();
        out.slots_per_sec = if elapsed > 0.0 {
            self.cfg.slots as f64 / elapsed
        } else {
            f64::INFINITY
        };
        out
    }
}

/// One run per offered load: the backlog-vs-arrival-rate stability
/// frontier (EXPERIMENTS.md §stability). Each entry pairs the packet
/// arrival probability with the full run result; the frontier is where
/// `mean_backlog` turns from flat to linear growth.
pub fn stability_frontier<S: Scheduler + ?Sized>(
    problem: &Problem,
    geometry: UniformGenerator,
    base: ChurnConfig,
    scheduler: &S,
    policy: ServicePolicy,
    packet_probs: &[f64],
) -> Vec<(f64, ChurnResult)> {
    packet_probs
        .iter()
        .map(|&p| {
            let cfg = ChurnConfig {
                packet_prob: p,
                ..base
            };
            let engine = ChurnEngine::new(problem.clone(), geometry, cfg);
            (p, engine.run(scheduler, policy))
        })
        .collect()
}

/// Poisson sample by Knuth's product-of-uniforms method — exact, and
/// `O(λ)` per draw, which is fine at per-slot link-arrival rates.
fn poisson(lambda: f64, rng: &mut StdRng) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

/// First slot at which a link arriving at `t` is gone: an exponential
/// lifetime with the given mean, floored at one full slot of life.
fn exponential_departure(t: u64, mean: f64, rng: &mut StdRng) -> u64 {
    let u: f64 = rng.gen();
    let life = -mean * (1.0 - u).ln();
    t + 1 + life.floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_channel::ChannelParams;
    use fading_core::algo::{GreedyRate, Rle};
    use fading_core::BackendChoice;
    use fading_net::TopologyGenerator;

    fn cfg(slots: u64) -> ChurnConfig {
        ChurnConfig {
            slots,
            link_arrival_rate: 2.0,
            mean_lifetime: 30.0,
            packet_prob: 0.05,
            seed: 7,
        }
    }

    fn engine_sized(n: usize, c: ChurnConfig) -> ChurnEngine {
        let geometry = UniformGenerator::paper(n);
        let problem =
            Problem::builder(geometry.generate(c.seed), ChannelParams::with_alpha(3.0)).build();
        ChurnEngine::new(problem, geometry, c)
    }

    fn engine(c: ChurnConfig) -> ChurnEngine {
        engine_sized(40, c)
    }

    #[test]
    fn packets_are_conserved_under_churn() {
        let r = engine(cfg(150)).run(&GreedyRate, ServicePolicy::MaxWeight);
        assert!(r.conserves_packets(), "{r:?}");
        assert!(r.links_arrived > 0, "arrivals must occur");
        assert!(r.links_departed > 0, "departures must occur");
        assert!(r.slots_per_sec > 0.0);
    }

    #[test]
    fn population_tracks_the_mg_infinity_equilibrium() {
        // λ·E[life] = 2 × 30 = 60; from a seed of 40 the time-averaged
        // population must sit in that neighborhood, and the engine's
        // live problem must agree with its own map.
        let mut e = engine(cfg(300));
        for _ in 0..300 {
            e.step(&GreedyRate, ServicePolicy::PlainRates);
        }
        assert_eq!(e.population(), e.problem().len());
        let pop = e.population() as f64;
        assert!(
            (20.0..=140.0).contains(&pop),
            "population {pop} wandered far from equilibrium 60"
        );
    }

    #[test]
    fn engine_state_matches_a_fresh_rebuild_every_step() {
        // The live problem is only ever touched by add_links /
        // remove_links; after a burst of churn it must still be
        // bit-identical to a from-scratch build over its own links.
        let mut e = engine_sized(
            20,
            ChurnConfig {
                slots: 40,
                link_arrival_rate: 3.0,
                mean_lifetime: 8.0,
                packet_prob: 0.2,
                seed: 11,
            },
        );
        for _ in 0..40 {
            e.step(&Rle::new(), ServicePolicy::PlainRates);
        }
        let p = e.problem();
        let rebuilt = Problem::builder(
            fading_net::LinkSet::new(*p.links().region(), p.links().links().to_vec()),
            *p.params(),
        )
        .epsilon(p.epsilon())
        .backend(p.backend_choice())
        .build();
        assert_eq!(p, &rebuilt);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = engine(cfg(120)).run(&GreedyRate, ServicePolicy::MaxWeight);
        let b = engine(cfg(120)).run(&GreedyRate, ServicePolicy::MaxWeight);
        // slots_per_sec is wall-clock; everything else must match.
        assert_eq!(
            (a.links_arrived, a.links_departed, a.packets_arrived),
            (b.links_arrived, b.links_departed, b.packets_arrived)
        );
        assert_eq!(
            (a.packets_delivered, a.packets_abandoned, a.final_backlog),
            (b.packets_delivered, b.packets_abandoned, b.final_backlog)
        );
        assert_eq!(a.final_population, b.final_population);
    }

    #[test]
    fn sparse_backend_runs_the_same_loop() {
        let c = ChurnConfig {
            slots: 60,
            link_arrival_rate: 1.0,
            mean_lifetime: 20.0,
            packet_prob: 0.1,
            seed: 3,
        };
        let geometry = UniformGenerator::paper(30);
        let problem = Problem::builder(geometry.generate(c.seed), ChannelParams::with_alpha(3.0))
            .backend(BackendChoice::Sparse(fading_core::SparseConfig::default()))
            .build();
        let e = ChurnEngine::new(problem, geometry, c);
        let r = e.run(&GreedyRate, ServicePolicy::MaxWeight);
        assert!(r.conserves_packets(), "{r:?}");
    }

    #[test]
    fn heavier_load_means_more_backlog() {
        let base = ChurnConfig {
            slots: 250,
            link_arrival_rate: 0.5,
            mean_lifetime: 60.0,
            packet_prob: 0.0, // overridden by the frontier
            seed: 19,
        };
        let geometry = UniformGenerator::paper(60);
        let problem =
            Problem::builder(geometry.generate(base.seed), ChannelParams::with_alpha(3.0)).build();
        let frontier = stability_frontier(
            &problem,
            geometry,
            base,
            &GreedyRate,
            ServicePolicy::MaxWeight,
            &[0.01, 0.9],
        );
        assert_eq!(frontier.len(), 2);
        assert!(
            frontier[1].1.mean_backlog > frontier[0].1.mean_backlog,
            "overload backlog {} must exceed light-load backlog {}",
            frontier[1].1.mean_backlog,
            frontier[0].1.mean_backlog
        );
    }

    #[test]
    fn poisson_mean_is_right() {
        let mut rng = seeded_rng(1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(3.0, &mut rng) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "poisson mean {mean}");
        assert_eq!(poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn lifetimes_last_at_least_one_slot() {
        let mut rng = seeded_rng(2);
        for t in [0u64, 5, 100] {
            for _ in 0..200 {
                assert!(exponential_departure(t, 1.0, &mut rng) > t);
            }
        }
    }
}
