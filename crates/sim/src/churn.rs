//! The online scheduling engine: a slot loop under link churn.
//!
//! The queueing simulator ([`crate::queueing`]) serves packets on a
//! *fixed* link population; real networks see links join and leave
//! ("millions of users joining and leaving", ROADMAP north star). A
//! [`ChurnEngine`] runs that regime on a live, incrementally mutated
//! [`Problem`]: Poisson link arrivals, exponential link lifetimes,
//! Bernoulli packet arrivals on the live links, per-slot scheduling of
//! the backlogged sub-instance under a [`ServicePolicy`], and Rayleigh
//! channel realizations deciding delivery — all seeded and
//! deterministic. Each slot's topology changes are one transaction: the
//! engine queues departures and arrivals into a [`MutationBatch`] and
//! commits it with a single [`Problem::apply`] (one envelope
//! reconciliation, one spatial-index patch pass — never a rebuild),
//! with a [`LinkIdMap`] keeping stable external handles across the
//! dense renumbering. The backlog-active sub-instance is cached and
//! patched incrementally across slots ([`SubCache`] internally) instead
//! of being restricted from scratch. See `docs/online.md`.

use crate::queueing::ServicePolicy;
use crate::slot::simulate_slot;
use fading_core::{
    LinkIdMap, LinkSpec, MutationBatch, MutationError, Problem, SchedCtx, Scheduler,
};
use fading_math::{seeded_rng, split_seed, OnlineStats};
use fading_net::{LinkId, UniformGenerator};
use fading_obs::{FlightConfig, FlightRecorder, Histogram, SlotRecord, SlotSeries, TraceEvent};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Configuration of a churn run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Number of simulated slots.
    pub slots: u64,
    /// Mean new links per slot (Poisson).
    pub link_arrival_rate: f64,
    /// Mean link lifetime in slots (exponential, ≥ 1 slot realized).
    pub mean_lifetime: f64,
    /// Per-live-link probability of one packet arrival per slot.
    pub packet_prob: f64,
    /// RNG seed; topology, packet, and channel streams derive from it.
    pub seed: u64,
}

impl ChurnConfig {
    /// Offered steady-state population `initial + λ·E[lifetime]`-ish
    /// sanity check helper: the equilibrium population of the M/G/∞
    /// arrival process alone (ignores the seed population draining).
    pub fn equilibrium_population(&self) -> f64 {
        self.link_arrival_rate * self.mean_lifetime
    }
}

/// What one [`ChurnEngine::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ChurnSlot {
    /// Slot index.
    pub slot: u64,
    /// Links that joined this slot.
    pub link_arrivals: u32,
    /// Links that departed this slot.
    pub link_departures: u32,
    /// Live links after churn.
    pub population: u32,
    /// Links scheduled for transmission.
    pub scheduled: u32,
    /// Packets that arrived this slot.
    pub packets_arrived: u32,
    /// Packets delivered.
    pub delivered: u32,
    /// Packets dropped with links that departed this slot.
    pub packets_abandoned: u64,
    /// Total backlog after service.
    pub backlog: u64,
}

/// Aggregate results of a churn run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ChurnResult {
    /// Simulated horizon.
    pub slots: u64,
    /// Links that joined over the run.
    pub links_arrived: u64,
    /// Links that departed over the run.
    pub links_departed: u64,
    /// Time-averaged live population.
    pub mean_population: f64,
    /// Live links when the run ended.
    pub final_population: usize,
    /// Packets that arrived.
    pub packets_arrived: u64,
    /// Packets delivered.
    pub packets_delivered: u64,
    /// Packets dropped because their link departed while they queued.
    pub packets_abandoned: u64,
    /// Time-averaged total backlog (after service, per slot).
    pub mean_backlog: f64,
    /// Largest backlog observed.
    pub max_backlog: u64,
    /// Backlog remaining at the end.
    pub final_backlog: u64,
    /// Sustained engine throughput: slots per wall-clock second over
    /// the whole run (churn + scheduling + channel realization).
    pub slots_per_sec: f64,
}

impl ChurnResult {
    /// Packet conservation: everything that arrived was delivered,
    /// abandoned with a departing link, or still queued.
    pub fn conserves_packets(&self) -> bool {
        self.packets_arrived == self.packets_delivered + self.packets_abandoned + self.final_backlog
    }

    /// Delivered throughput in packets/slot over the run's horizon.
    pub fn delivered_per_slot(&self) -> f64 {
        if self.slots == 0 {
            return 0.0;
        }
        self.packets_delivered as f64 / self.slots as f64
    }

    /// Coarse drift verdict for frontier sweeps: `"growing"` when the
    /// run ends with a backlog well above its own time average (the
    /// signature of an unstable queue under Ásgeirsson–Halldórsson–
    /// Mitra's stability lens), `"stable"` otherwise. A heuristic for
    /// progress lines, not a proof of (in)stability.
    pub fn drift_verdict(&self) -> &'static str {
        if self.final_backlog > 10 && self.final_backlog as f64 > 2.0 * self.mean_backlog {
            "growing"
        } else {
            "stable"
        }
    }
}

/// Per-link engine state, keyed by the link's stable external handle.
#[derive(Debug)]
struct LinkState {
    /// FIFO of packet arrival slots.
    queue: VecDeque<u64>,
    /// First slot at which the link is gone.
    departs_at: u64,
}

/// Phase indices for the per-slot attribution (see [`PhaseTimer`]).
/// `mutate` is building the slot's transaction (departure scan +
/// arrival sampling); `commit` is [`Problem::apply`] plus the engine
/// state bookkeeping the receipt drives.
const PH_MUTATE: usize = 0;
const PH_COMMIT: usize = 1;
const PH_ENVELOPE: usize = 2;
const PH_RESTRICT: usize = 3;
const PH_SCHEDULE: usize = 4;
const PH_SERVICE: usize = 5;
/// Number of attributed phases.
const PHASES: usize = 6;
const PHASE_NAMES: [&str; PHASES] = [
    "mutate", "commit", "envelope", "restrict", "schedule", "service",
];

/// Static, pre-registered histogram names for the six phases —
/// resolved once at arm time so the hot path never touches the
/// registry lock.
const PHASE_HIST_NAMES: [&str; PHASES] = [
    "churn.phase.mutate",
    "churn.phase.commit",
    "churn.phase.envelope",
    "churn.phase.restrict",
    "churn.phase.schedule",
    "churn.phase.service",
];

/// Nanosecond bucket bounds for the phase histograms: 1 µs → 10 s in
/// decades, fine enough to separate the `O(N)` walks from the
/// scheduler at any instance size the engine runs.
const PHASE_HIST_BOUNDS: [f64; 8] = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10];

/// Segment stopwatch for phase attribution. `lap(phase)` charges the
/// time since the previous lap to `phase`; segments of the same phase
/// (the dense walks appear three times per slot) accumulate. When
/// disarmed the laps are branch-only — no clock reads.
struct PhaseTimer {
    on: bool,
    started: Instant,
    mark: Instant,
    acc: [u64; PHASES],
}

impl PhaseTimer {
    fn start(on: bool) -> Self {
        let now = Instant::now();
        Self {
            on,
            started: now,
            mark: now,
            acc: [0; PHASES],
        }
    }

    #[inline]
    fn lap(&mut self, phase: usize) {
        if self.on {
            let now = Instant::now();
            self.acc[phase] += (now - self.mark).as_nanos() as u64;
            self.mark = now;
        }
    }

    /// Whole-slot wall time so far — measured independently of the
    /// laps, so the phase sum can be audited against it.
    fn total_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }
}

/// The flight-recorder side of the engine's telemetry: the obs-layer
/// black box plus the engine-owned pieces it cannot know about — the
/// dump directory and the last slot's restricted sub-instance (needed
/// to make the post-mortem trace replayable).
struct FlightBox {
    rec: FlightRecorder,
    out_dir: Option<PathBuf>,
    /// The most recent slot's scheduled sub-problem, kept alive one
    /// slot so a dump can write the instance its trace replays on.
    last_sub: Option<Problem>,
    /// Where the post-mortem bundle landed, once an anomaly fired.
    postmortem: Option<PathBuf>,
}

/// Live telemetry armed onto a [`ChurnEngine`]: optional slot series,
/// optional flight recorder, pre-registered phase histograms, and the
/// cumulative totals the anomaly detector audits.
pub struct ChurnTelemetry {
    series: Option<SlotSeries>,
    flight: Option<FlightBox>,
    phase_hists: [Histogram; PHASES],
    slot_hist: Histogram,
    /// Cumulative per-phase ns, for the live phase-split view.
    phase_totals: [u64; PHASES],
    slot_ns_total: u64,
    /// Cumulative packet totals for the conservation audit.
    arrived_total: u64,
    delivered_total: u64,
    abandoned_total: u64,
    health: &'static str,
}

impl std::fmt::Debug for ChurnTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChurnTelemetry")
            .field("health", &self.health)
            .field("phase_totals", &self.phase_totals)
            .field("series", &self.series.is_some())
            .field("flight", &self.flight.is_some())
            .finish_non_exhaustive()
    }
}

impl ChurnTelemetry {
    fn new() -> Self {
        Self {
            series: None,
            flight: None,
            phase_hists: std::array::from_fn(|i| {
                fading_obs::histogram(PHASE_HIST_NAMES[i], &PHASE_HIST_BOUNDS)
            }),
            slot_hist: fading_obs::histogram("churn.slot_ns", &PHASE_HIST_BOUNDS),
            phase_totals: [0; PHASES],
            slot_ns_total: 0,
            arrived_total: 0,
            delivered_total: 0,
            abandoned_total: 0,
            health: "ok",
        }
    }

    /// The armed slot series, if any.
    pub fn series(&self) -> Option<&SlotSeries> {
        self.series.as_ref()
    }

    /// `"ok"`, or the tag of the anomaly that fired.
    pub fn health(&self) -> &'static str {
        self.health
    }

    /// Directory the post-mortem bundle was written to, if one was.
    pub fn postmortem(&self) -> Option<&Path> {
        self.flight.as_ref().and_then(|f| f.postmortem.as_deref())
    }

    /// Cumulative per-phase share of attributed time, as integer
    /// percentages in phase order (mutate, commit, envelope, restrict,
    /// schedule, service). Zero until the first timed slot.
    pub fn phase_split(&self) -> [u32; PHASES] {
        let total: u64 = self.phase_totals.iter().sum();
        if total == 0 {
            return [0; PHASES];
        }
        std::array::from_fn(|i| (self.phase_totals[i] * 100 / total) as u32)
    }

    /// Renders the live detail line for the watch view: phase split
    /// plus health, appended to the population/backlog basics.
    fn watch_detail(&self, out: &mut String, population: u32, backlog: u64) {
        let split = self.phase_split();
        let _ = write!(out, "pop {population} backlog {backlog} · ");
        for (i, name) in PHASE_NAMES.iter().enumerate() {
            let _ = write!(out, "{}{}%", &name[..2], split[i]);
            if i + 1 < PHASE_NAMES.len() {
                out.push('/');
            }
        }
        let _ = write!(out, " · {}", self.health);
    }
}

/// Declarative telemetry selection for [`ChurnEngine::arm`]: choose a
/// slot series, a flight recorder, both, or neither (bare phase
/// attribution) and arm the whole bundle in one call. Replaces the
/// `arm_series` / `arm_flight` / `arm_phases` trio.
///
/// ```ignore
/// engine.arm(
///     TelemetryConfig::new()
///         .series(SlotSeries::in_memory(SeriesConfig::default()))
///         .flight(FlightConfig::default(), Some(out_dir)),
/// );
/// ```
#[derive(Default)]
pub struct TelemetryConfig {
    series: Option<SlotSeries>,
    flight: Option<(FlightConfig, Option<PathBuf>)>,
}

impl TelemetryConfig {
    /// An empty config — arming it still switches the engine onto the
    /// timed path (phase attribution + histograms), nothing more.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a slot-series recorder.
    pub fn series(mut self, series: SlotSeries) -> Self {
        self.series = Some(series);
        self
    }

    /// Attaches a flight recorder. `out_dir` is where the post-mortem
    /// bundle lands when the anomaly detector fires (`None` detects
    /// but never dumps). When `cfg.capture_trace` is on the engine runs
    /// its scheduler traced each slot, so don't combine with an
    /// external `--trace-out` drain: the flight recorder owns the
    /// global trace ring.
    pub fn flight(mut self, cfg: FlightConfig, out_dir: Option<PathBuf>) -> Self {
        self.flight = Some((cfg, out_dir));
        self
    }
}

/// The cached backlog-active sub-problem, reused across slots.
///
/// `Problem::restrict` from scratch is `O(k·degree)` in the member
/// count every slot; under churn the backlog set barely moves slot to
/// slot, so the engine keeps the restricted sub-problem alive and
/// patches it with a [`MutationBatch`] of exactly the links that
/// entered or left the backlog (falling back to a full restrict when
/// the diff exceeds half the membership). Soundness: a member link's
/// geometry is immutable while it lives, engine external ids are never
/// reused, and a restriction depends only on its members — so equality
/// of the member-ext set means the cached sub-problem is still exact,
/// regardless of what other links churned (the cache is stamp-keyed
/// only to observe *whether* the main problem moved, not to rebuild).
#[derive(Debug)]
struct SubCache {
    /// The restricted sub-instance, patched in place.
    sub: Problem,
    /// Mirror of the sub's dense renumbering (sub-external ↔ sub-dense).
    map: LinkIdMap,
    /// Sub-external id → engine-external id.
    main_of: HashMap<u64, u64>,
    /// Engine-external id → sub-external id (the membership set).
    sub_of: HashMap<u64, u64>,
    /// Reusable per-slot patch transaction.
    batch: MutationBatch,
    /// Engine-external ids of the batch's queued adds, in slot order.
    pending: Vec<u64>,
    /// Main-problem stamp the cache was last synced against.
    synced: u64,
}

/// A long-running scheduling engine over a live, churning instance.
///
/// Owns the mutable [`Problem`], the external↔dense [`LinkIdMap`], all
/// per-link queues, and a warm [`SchedCtx`]. Drive it one
/// [`step`](Self::step) at a time (the CLI's progress loop does) or
/// use [`run`](Self::run) for a whole horizon.
#[derive(Debug)]
pub struct ChurnEngine {
    problem: Problem,
    map: LinkIdMap,
    states: HashMap<u64, LinkState>,
    geometry: UniformGenerator,
    cfg: ChurnConfig,
    /// Topology stream: arrival counts, positions, lifetimes.
    churn_rng: StdRng,
    /// Packet-arrival stream, separate so arrival patterns don't shift
    /// when churn parameters change.
    packet_rng: StdRng,
    ctx: SchedCtx,
    slot: u64,
    // scratch buffers reused across slots
    batch: MutationBatch,
    arrival_departs: Vec<u64>,
    backlogged: Vec<LinkId>,
    desired: HashSet<u64>,
    rates: Vec<f64>,
    /// Cached backlog-active sub-problem (see [`SubCache`]).
    sub: Option<SubCache>,
    /// Live telemetry (slot series / flight recorder / phase
    /// attribution); `None` keeps the hot loop on the untimed path.
    telemetry: Option<Box<ChurnTelemetry>>,
    /// Scratch for the watch-view detail line.
    detail: String,
}

impl ChurnEngine {
    /// Builds the engine over a seed instance (its links are the slot-0
    /// population; lifetimes for them are sampled like any arrival's).
    /// `geometry` shapes arriving links: sender uniform in its region,
    /// length `U[len_lo, len_hi]`, uniform direction — the same law the
    /// seed generator uses. Everything the problem was configured with
    /// (ε, channel, backend, power scales) rides along through the
    /// in-place mutations.
    ///
    /// # Panics
    /// Panics on a non-finite/negative arrival rate, a lifetime below
    /// one slot, `packet_prob` outside `[0, 1]`, or `slots == 0`.
    pub fn new(problem: Problem, geometry: UniformGenerator, cfg: ChurnConfig) -> Self {
        assert!(
            cfg.link_arrival_rate.is_finite() && cfg.link_arrival_rate >= 0.0,
            "link arrival rate must be finite and non-negative"
        );
        assert!(
            cfg.mean_lifetime >= 1.0,
            "mean lifetime must be at least one slot"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.packet_prob),
            "packet probability must be in [0,1]"
        );
        assert!(cfg.slots > 0, "need at least one slot");
        let n0 = problem.len();
        let mut churn_rng = seeded_rng(split_seed(cfg.seed, 0));
        let packet_rng = seeded_rng(split_seed(cfg.seed, 1));
        let map = LinkIdMap::with_len(n0);
        let mut states = HashMap::with_capacity(n0 * 2);
        for ext in 0..n0 as u64 {
            states.insert(
                ext,
                LinkState {
                    queue: VecDeque::new(),
                    departs_at: exponential_departure(0, cfg.mean_lifetime, &mut churn_rng),
                },
            );
        }
        let mut ctx = SchedCtx::new();
        ctx.prepare(n0);
        Self {
            problem,
            map,
            states,
            geometry,
            cfg,
            churn_rng,
            packet_rng,
            ctx,
            slot: 0,
            batch: MutationBatch::new(),
            arrival_departs: Vec::new(),
            backlogged: Vec::new(),
            desired: HashSet::new(),
            rates: Vec::new(),
            sub: None,
            telemetry: None,
            detail: String::new(),
        }
    }

    /// The live instance (mutated in place across steps).
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Arms live telemetry as declared by one [`TelemetryConfig`].
    /// Arming anything — even an empty config — switches the engine
    /// onto the timed path (phase attribution + histograms). Calling
    /// again merges: components present in `cfg` replace their armed
    /// counterparts, absent ones are left as they are.
    pub fn arm(&mut self, cfg: TelemetryConfig) {
        let tel = self
            .telemetry
            .get_or_insert_with(|| Box::new(ChurnTelemetry::new()));
        if let Some(series) = cfg.series {
            tel.series = Some(series);
        }
        if let Some((fcfg, out_dir)) = cfg.flight {
            tel.flight = Some(FlightBox {
                rec: FlightRecorder::new(fcfg),
                out_dir,
                last_sub: None,
                postmortem: None,
            });
        }
    }

    /// Arms the slot-series recorder.
    #[deprecated(note = "use `arm(TelemetryConfig::new().series(series))`")]
    pub fn arm_series(&mut self, series: SlotSeries) {
        self.arm(TelemetryConfig::new().series(series));
    }

    /// Arms the flight recorder.
    #[deprecated(note = "use `arm(TelemetryConfig::new().flight(cfg, out_dir))`")]
    pub fn arm_flight(&mut self, cfg: FlightConfig, out_dir: Option<PathBuf>) {
        self.arm(TelemetryConfig::new().flight(cfg, out_dir));
    }

    /// Arms the timed path (phase attribution + histograms) without a
    /// series or flight recorder — the minimal telemetry footprint.
    #[deprecated(note = "use `arm(TelemetryConfig::new())`")]
    pub fn arm_phases(&mut self) {
        self.arm(TelemetryConfig::new());
    }

    /// The armed telemetry, if any.
    pub fn telemetry(&self) -> Option<&ChurnTelemetry> {
        self.telemetry.as_deref()
    }

    /// `"ok"`, or the tag of the anomaly that fired.
    pub fn health(&self) -> &'static str {
        self.telemetry.as_ref().map_or("ok", |t| t.health)
    }

    /// Detaches and returns the telemetry (flushing the series), e.g.
    /// to inspect the ring after a hand-driven step loop.
    pub fn take_telemetry(&mut self) -> Option<Box<ChurnTelemetry>> {
        let mut tel = self.telemetry.take();
        if let Some(t) = tel.as_mut() {
            if let Some(s) = t.series.as_mut() {
                let _ = s.flush();
            }
        }
        tel
    }

    /// Number of live links.
    pub fn population(&self) -> usize {
        self.map.len()
    }

    /// Current slot index (number of completed steps).
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Advances one slot: departures → arrivals → packet arrivals →
    /// schedule the backlogged sub-instance → channel realization →
    /// service.
    pub fn step<S: Scheduler + ?Sized>(
        &mut self,
        scheduler: &S,
        policy: ServicePolicy,
    ) -> ChurnSlot {
        let _span = fading_obs::span!("sim.churn.slot");
        let armed = self.telemetry.is_some();
        // Trace capture (flight recorder only): the engine owns the
        // global trace ring for the duration of the slot.
        let capture = self
            .telemetry
            .as_ref()
            .and_then(|t| t.flight.as_ref())
            .is_some_and(|f| f.rec.wants_trace());
        let mut timer = PhaseTimer::start(armed);
        let t = self.slot;
        let mut abandoned = 0u64;

        // Build the slot's transaction. Departures: collect expired
        // links in dense order (the only deterministic iteration
        // order), queued by external id. Arrivals: Poisson count,
        // geometry sampled exactly like the seed generator's (sender
        // uniform in the region, length U[lo, hi], uniform direction).
        self.batch.clear();
        self.arrival_departs.clear();
        for dense in 0..self.map.len() as u32 {
            let ext = self.map.external(LinkId(dense));
            if self.states[&ext].departs_at <= t {
                self.batch.remove(ext);
            }
        }
        let link_departures = self.batch.removes().len() as u32;
        let arrivals = poisson(self.cfg.link_arrival_rate, &mut self.churn_rng);
        for _ in 0..arrivals {
            let departs_at = exponential_departure(t, self.cfg.mean_lifetime, &mut self.churn_rng);
            let spec = sample_spec(&self.geometry, &mut self.churn_rng);
            self.batch.add(spec);
            self.arrival_departs.push(departs_at);
        }
        timer.lap(PH_MUTATE);

        // Commit it: one `Problem::apply` — one envelope
        // reconciliation and one spatial-index patch pass for the whole
        // slot, with the id map mirrored inside the same transaction.
        // Coordinate collisions are measure-zero but possible under
        // adversarial seeds; resample exactly the rejected slot.
        if !self.batch.is_empty() {
            let mut tries = 0;
            let receipt = loop {
                match self.problem.apply(&self.batch, &mut self.map) {
                    Ok(receipt) => break receipt,
                    Err(MutationError::InvalidAdd { slot, .. }) => {
                        tries += 1;
                        assert!(tries < 100, "could not place an arriving link");
                        let spec = sample_spec(&self.geometry, &mut self.churn_rng);
                        self.batch.replace_add(slot, spec);
                    }
                    Err(e) => unreachable!("engine removes only live externals: {e}"),
                }
            };
            for ext in &receipt.removed {
                let state = self.states.remove(ext).expect("state tracks map");
                abandoned += state.queue.len() as u64;
            }
            for (i, &ext) in receipt.added.iter().enumerate() {
                self.states.insert(
                    ext,
                    LinkState {
                        queue: VecDeque::new(),
                        departs_at: self.arrival_departs[i],
                    },
                );
            }
            if link_departures > 0 {
                fading_obs::counter!("sim.churn.link_departures").add(link_departures as u64);
            }
            if arrivals > 0 {
                fading_obs::counter!("sim.churn.link_arrivals").add(arrivals as u64);
            }
        }
        timer.lap(PH_COMMIT);

        // Packet arrivals on the live population, dense order.
        let mut packets_arrived = 0u32;
        for dense in 0..self.map.len() as u32 {
            if self.packet_rng.gen::<f64>() < self.cfg.packet_prob {
                let ext = self.map.external(LinkId(dense));
                self.states
                    .get_mut(&ext)
                    .expect("state tracks map")
                    .queue
                    .push_back(t);
                packets_arrived += 1;
            }
        }

        // Schedule the backlogged sub-instance and realize the channel.
        self.backlogged.clear();
        for dense in 0..self.map.len() as u32 {
            let ext = self.map.external(LinkId(dense));
            if !self.states[&ext].queue.is_empty() {
                self.backlogged.push(LinkId(dense));
            }
        }
        timer.lap(PH_ENVELOPE);
        let backlogged_count = self.backlogged.len() as u32;
        let mut scheduled = 0u32;
        let mut delivered = 0u32;
        let mut sub_for_flight: Option<Problem> = None;
        let mut trace_events: Vec<TraceEvent> = Vec::new();
        if !self.backlogged.is_empty() {
            if capture {
                fading_obs::set_tracing(true);
                fading_obs::trace::publish(vec![TraceEvent::SlotStart {
                    slot: t,
                    backlog: backlogged_count,
                }]);
            }
            self.sync_sub(policy);
            timer.lap(PH_RESTRICT);
            let cache = self.sub.as_ref().expect("sync_sub always leaves a cache");
            let schedule = scheduler.schedule_in(&cache.sub, &mut self.ctx);
            timer.lap(PH_SCHEDULE);
            scheduled = schedule.len() as u32;
            let mut channel_rng = seeded_rng(split_seed(self.cfg.seed, t + 2));
            let outcome = simulate_slot(&cache.sub, &schedule, &mut channel_rng);
            for sub_id in outcome.successes {
                let ext = cache.main_of[&cache.map.external(sub_id)];
                if self
                    .states
                    .get_mut(&ext)
                    .expect("live")
                    .queue
                    .pop_front()
                    .is_some()
                {
                    delivered += 1;
                }
            }
            if capture {
                fading_obs::trace::publish(vec![TraceEvent::SlotEnd {
                    slot: t,
                    links: schedule
                        .iter()
                        .map(|id| {
                            let ext = cache.main_of[&cache.map.external(id)];
                            self.map.dense(ext).expect("scheduled links are live").0
                        })
                        .collect(),
                }]);
                trace_events = fading_obs::take_trace().events;
                fading_obs::set_tracing(false);
                sub_for_flight = Some(cache.sub.clone());
            }
            self.ctx.recycle(schedule);
            timer.lap(PH_SERVICE);
        }

        let backlog: u64 = self
            .map
            .externals()
            .iter()
            .map(|ext| self.states[ext].queue.len() as u64)
            .sum();
        timer.lap(PH_ENVELOPE);
        self.slot = t + 1;
        let out = ChurnSlot {
            slot: t,
            link_arrivals: arrivals,
            link_departures,
            population: self.map.len() as u32,
            scheduled,
            packets_arrived,
            delivered,
            packets_abandoned: abandoned,
            backlog,
        };
        if armed {
            let rec = SlotRecord {
                slot: t,
                population: out.population as u64,
                arrivals: arrivals as u64,
                departures: link_departures as u64,
                backlogged: backlogged_count as u64,
                scheduled: scheduled as u64,
                eliminated: (backlogged_count - scheduled) as u64,
                packets: packets_arrived as u64,
                delivered: delivered as u64,
                abandoned,
                backlog,
                mutate_ns: timer.acc[PH_MUTATE],
                commit_ns: timer.acc[PH_COMMIT],
                envelope_ns: timer.acc[PH_ENVELOPE],
                restrict_ns: timer.acc[PH_RESTRICT],
                schedule_ns: timer.acc[PH_SCHEDULE],
                service_ns: timer.acc[PH_SERVICE],
                slot_ns: timer.total_ns(),
            };
            self.finish_slot_telemetry(rec, trace_events, sub_for_flight);
        }
        out
    }

    /// Brings the cached backlog-active sub-problem in sync with
    /// `self.backlogged`: patches it with exactly the links that
    /// entered or left the backlog since last slot (one transactional
    /// [`Problem::apply`] on the sub-instance), or restricts from
    /// scratch when there is no cache yet or the membership diff
    /// exceeds half the cached size. Afterwards the sub's rates carry
    /// this slot's scheduling weights (queue lengths under MaxWeight,
    /// the links' own rates otherwise), set in place.
    fn sync_sub(&mut self, policy: ServicePolicy) {
        self.desired.clear();
        for dense in &self.backlogged {
            self.desired.insert(self.map.external(*dense));
        }
        // Diff the desired membership against the cache. Links whose
        // geometry the cache copied are immutable while alive and
        // external ids are never reused, so an unchanged member needs
        // no work no matter how much the main problem churned around
        // it; the diff IS the validity check. The main problem's stamp
        // only classifies the outcome for telemetry: an empty diff at
        // an unchanged stamp is a bit-identical reuse.
        let rebuild = match self.sub.as_mut() {
            None => true,
            Some(cache) => {
                cache.batch.clear();
                cache.pending.clear();
                for (ext, sub_ext) in &cache.sub_of {
                    if !self.desired.contains(ext) {
                        cache.batch.remove(*sub_ext);
                    }
                }
                for dense in &self.backlogged {
                    let ext = self.map.external(*dense);
                    if !cache.sub_of.contains_key(&ext) {
                        let link = self.problem.links().link(*dense);
                        cache.batch.add(
                            LinkSpec::new(link.sender, link.receiver)
                                .with_rate(link.rate)
                                .with_power_scale(self.problem.power_scale(*dense)),
                        );
                        cache.pending.push(ext);
                    }
                }
                if 2 * cache.batch.len() > cache.map.len().max(1) {
                    true
                } else {
                    if cache.batch.is_empty() {
                        let tag = if cache.synced == self.problem.stamp() {
                            "sim.churn.sub.reuses"
                        } else {
                            "sim.churn.sub.holds"
                        };
                        fading_obs::counter(tag).add(1);
                    } else {
                        let receipt = cache
                            .sub
                            .apply(&cache.batch, &mut cache.map)
                            .expect("sub patches copy live links");
                        for sub_ext in &receipt.removed {
                            let ext = cache.main_of.remove(sub_ext).expect("membership mirrored");
                            cache.sub_of.remove(&ext);
                        }
                        for (i, &sub_ext) in receipt.added.iter().enumerate() {
                            cache.main_of.insert(sub_ext, cache.pending[i]);
                            cache.sub_of.insert(cache.pending[i], sub_ext);
                        }
                        fading_obs::counter!("sim.churn.sub.patches").add(1);
                    }
                    cache.synced = self.problem.stamp();
                    false
                }
            }
        };
        if rebuild {
            let (sub, mapping) = self.problem.restrict(&self.backlogged);
            let k = mapping.len();
            let mut main_of = HashMap::with_capacity(2 * k);
            let mut sub_of = HashMap::with_capacity(2 * k);
            for (i, orig) in mapping.iter().enumerate() {
                let ext = self.map.external(*orig);
                main_of.insert(i as u64, ext);
                sub_of.insert(ext, i as u64);
            }
            let batch = self
                .sub
                .take()
                .map(|c| {
                    let mut b = c.batch;
                    b.clear();
                    b
                })
                .unwrap_or_default();
            self.sub = Some(SubCache {
                sub,
                map: LinkIdMap::with_len(k),
                main_of,
                sub_of,
                batch,
                pending: Vec::new(),
                synced: self.problem.stamp(),
            });
            fading_obs::counter!("sim.churn.sub.rebuilds").add(1);
        }
        let cache = self.sub.as_mut().expect("cache just synced");
        self.rates.clear();
        for dense in 0..cache.map.len() as u32 {
            let ext = cache.main_of[&cache.map.external(LinkId(dense))];
            self.rates.push(match policy {
                ServicePolicy::MaxWeight => (self.states[&ext].queue.len() as f64).max(1e-9),
                _ => {
                    let main = self.map.dense(ext).expect("member is live");
                    self.problem.links().link(main).rate
                }
            });
        }
        cache.sub.update_link_rates(&self.rates);
    }

    /// The telemetry tail of one slot: series, histograms, anomaly
    /// detection, and (at most once) the post-mortem dump.
    fn finish_slot_telemetry(
        &mut self,
        rec: SlotRecord,
        trace_events: Vec<TraceEvent>,
        sub: Option<Problem>,
    ) {
        let Some(tel) = self.telemetry.as_deref_mut() else {
            return;
        };
        for (i, h) in tel.phase_hists.iter().enumerate() {
            h.record(timer_ns(&rec, i) as f64);
        }
        tel.slot_hist.record(rec.slot_ns as f64);
        for i in 0..PHASES {
            tel.phase_totals[i] += timer_ns(&rec, i);
        }
        tel.slot_ns_total += rec.slot_ns;
        tel.arrived_total += rec.packets;
        tel.delivered_total += rec.delivered;
        tel.abandoned_total += rec.abandoned;
        if let Some(series) = tel.series.as_mut() {
            series.record(&rec);
        }
        if let Some(flight) = tel.flight.as_mut() {
            let conserved_ok =
                tel.arrived_total == tel.delivered_total + tel.abandoned_total + rec.backlog;
            let conserved = Some((
                conserved_ok,
                tel.arrived_total,
                tel.delivered_total,
                tel.abandoned_total,
                rec.backlog,
            ));
            if sub.is_some() {
                flight.last_sub = sub;
            }
            if let Some(anomaly) = flight.rec.observe(&rec, trace_events, conserved) {
                tel.health = anomaly.tag();
                fading_obs::emit_event(
                    "churn.anomaly",
                    &[
                        ("tag", fading_obs::EventValue::Str(anomaly.tag().into())),
                        ("slot", fading_obs::EventValue::U64(rec.slot)),
                    ],
                );
                if let Some(dir) = flight.out_dir.clone() {
                    match flight.rec.dump(&dir, &anomaly) {
                        Ok(_paths) => {
                            write_replay_instance(&dir, flight.last_sub.as_ref());
                            flight.postmortem = Some(dir);
                        }
                        Err(e) => eprintln!("flight recorder: dump failed: {e}"),
                    }
                }
            }
        }
    }

    /// Runs the configured horizon and aggregates, timing the loop for
    /// the sustained slots/sec figure. With telemetry armed the
    /// progress line grows a live phase split and health state (the
    /// `--watch` view); query [`telemetry`](Self::telemetry) afterwards
    /// for the series ring and any post-mortem location.
    pub fn run<S: Scheduler + ?Sized>(
        &mut self,
        scheduler: &S,
        policy: ServicePolicy,
    ) -> ChurnResult {
        let _span = fading_obs::span!("sim.churn.run");
        let progress = fading_obs::Progress::new("churn", "slots", self.cfg.slots);
        let mut population = OnlineStats::new();
        let mut backlog_stats = OnlineStats::new();
        let mut out = ChurnResult {
            slots: self.cfg.slots,
            links_arrived: 0,
            links_departed: 0,
            mean_population: 0.0,
            final_population: 0,
            packets_arrived: 0,
            packets_delivered: 0,
            packets_abandoned: 0,
            mean_backlog: 0.0,
            max_backlog: 0,
            final_backlog: 0,
            slots_per_sec: 0.0,
        };
        let started = std::time::Instant::now();
        for _ in 0..self.cfg.slots {
            let slot = self.step(scheduler, policy);
            out.links_arrived += slot.link_arrivals as u64;
            out.links_departed += slot.link_departures as u64;
            out.packets_arrived += slot.packets_arrived as u64;
            out.packets_delivered += slot.delivered as u64;
            out.packets_abandoned += slot.packets_abandoned;
            out.max_backlog = out.max_backlog.max(slot.backlog);
            out.final_backlog = slot.backlog;
            population.push(slot.population as f64);
            backlog_stats.push(slot.backlog as f64);
            let mut detail = std::mem::take(&mut self.detail);
            detail.clear();
            if let Some(tel) = self.telemetry.as_deref() {
                tel.watch_detail(&mut detail, slot.population, slot.backlog);
            } else {
                let _ = write!(detail, "pop {} backlog {}", slot.population, slot.backlog);
            }
            progress.report(slot.slot + 1, &detail, slot.slot + 1);
            self.detail = detail;
        }
        let elapsed = started.elapsed().as_secs_f64();
        out.mean_population = population.mean();
        out.mean_backlog = backlog_stats.mean();
        out.final_population = self.population();
        out.slots_per_sec = if elapsed > 0.0 {
            self.cfg.slots as f64 / elapsed
        } else {
            f64::INFINITY
        };
        if let Some(tel) = self.telemetry.as_deref_mut() {
            if let Some(series) = tel.series.as_mut() {
                if let Err(e) = series.flush() {
                    eprintln!("{e}");
                }
            }
        }
        out
    }
}

/// Maps a phase index to its field in a [`SlotRecord`].
fn timer_ns(rec: &SlotRecord, phase: usize) -> u64 {
    match phase {
        PH_MUTATE => rec.mutate_ns,
        PH_COMMIT => rec.commit_ns,
        PH_ENVELOPE => rec.envelope_ns,
        PH_RESTRICT => rec.restrict_ns,
        PH_SCHEDULE => rec.schedule_ns,
        _ => rec.service_ns,
    }
}

#[derive(Serialize)]
struct ReplayMeta {
    params: fading_channel::ChannelParams,
    epsilon: f64,
    backend: String,
}

/// Writes the anomaly slot's restricted sub-instance next to the
/// post-mortem bundle (`replay_instance.json` + `replay_meta.json`),
/// so `replay_trace.jsonl` can be replayed against a faithful rebuild:
/// `Problem::builder(load(instance), meta.params).epsilon(meta.epsilon)`
/// (replay audits picks/eliminations/debits, which are rate-blind, so
/// the MaxWeight rate overrides riding along in the link set are
/// harmless). Best-effort: a failed write degrades the bundle, it
/// doesn't kill the run.
fn write_replay_instance(dir: &Path, sub: Option<&Problem>) {
    let Some(sub) = sub else {
        return;
    };
    let inst = dir.join("replay_instance.json");
    if let Err(e) = fading_net::io::save(sub.links(), &inst) {
        eprintln!("flight recorder: cannot write {}: {e}", inst.display());
        return;
    }
    let meta = ReplayMeta {
        params: *sub.params(),
        epsilon: sub.epsilon(),
        backend: format!("{:?}", sub.backend_choice()),
    };
    let path = dir.join("replay_meta.json");
    match serde_json::to_string_pretty(&meta) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("flight recorder: cannot write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("flight recorder: meta encode failed: {e}"),
    }
}

/// One run per offered load: the backlog-vs-arrival-rate stability
/// frontier (EXPERIMENTS.md §stability). Each entry pairs the packet
/// arrival probability with the full run result; the frontier is where
/// `mean_backlog` turns from flat to linear growth.
pub fn stability_frontier<S: Scheduler + ?Sized>(
    problem: &Problem,
    geometry: UniformGenerator,
    base: ChurnConfig,
    scheduler: &S,
    policy: ServicePolicy,
    packet_probs: &[f64],
) -> Vec<(f64, ChurnResult)> {
    let progress =
        fading_obs::Progress::new("frontier", "slots", base.slots * packet_probs.len() as u64);
    packet_probs
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let cfg = ChurnConfig {
                packet_prob: p,
                ..base
            };
            let mut engine = ChurnEngine::new(problem.clone(), geometry, cfg);
            let r = engine.run(scheduler, policy);
            progress.report(
                (i as u64 + 1) * base.slots,
                &format!(
                    "point {}/{} · p={p:.3} · {:.2} delivered/slot · {}",
                    i + 1,
                    packet_probs.len(),
                    r.delivered_per_slot(),
                    r.drift_verdict()
                ),
                (i as u64 + 1) * base.slots,
            );
            (p, r)
        })
        .collect()
}

/// Samples one arriving link's geometry exactly like the seed
/// generator's law: sender uniform in the region, length
/// `U[len_lo, len_hi]`, uniform direction.
fn sample_spec(geometry: &UniformGenerator, rng: &mut StdRng) -> LinkSpec {
    let side = geometry.side;
    let s = fading_geom::Point2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
    let d = rng.gen_range(geometry.len_lo..=geometry.len_hi);
    let theta = rng.gen_range(0.0..std::f64::consts::TAU);
    LinkSpec::new(s, s.offset_polar(d, theta))
}

/// Poisson sample by Knuth's product-of-uniforms method — exact, and
/// `O(λ)` per draw, which is fine at per-slot link-arrival rates.
fn poisson(lambda: f64, rng: &mut StdRng) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

/// First slot at which a link arriving at `t` is gone: an exponential
/// lifetime with the given mean, floored at one full slot of life.
fn exponential_departure(t: u64, mean: f64, rng: &mut StdRng) -> u64 {
    let u: f64 = rng.gen();
    let life = -mean * (1.0 - u).ln();
    t + 1 + life.floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_channel::ChannelParams;
    use fading_core::algo::{GreedyRate, Rle};
    use fading_core::BackendChoice;
    use fading_net::TopologyGenerator;

    fn cfg(slots: u64) -> ChurnConfig {
        ChurnConfig {
            slots,
            link_arrival_rate: 2.0,
            mean_lifetime: 30.0,
            packet_prob: 0.05,
            seed: 7,
        }
    }

    fn engine_sized(n: usize, c: ChurnConfig) -> ChurnEngine {
        let geometry = UniformGenerator::paper(n);
        let problem =
            Problem::builder(geometry.generate(c.seed), ChannelParams::with_alpha(3.0)).build();
        ChurnEngine::new(problem, geometry, c)
    }

    fn engine(c: ChurnConfig) -> ChurnEngine {
        engine_sized(40, c)
    }

    #[test]
    fn packets_are_conserved_under_churn() {
        let r = engine(cfg(150)).run(&GreedyRate, ServicePolicy::MaxWeight);
        assert!(r.conserves_packets(), "{r:?}");
        assert!(r.links_arrived > 0, "arrivals must occur");
        assert!(r.links_departed > 0, "departures must occur");
        assert!(r.slots_per_sec > 0.0);
    }

    #[test]
    fn population_tracks_the_mg_infinity_equilibrium() {
        // λ·E[life] = 2 × 30 = 60; from a seed of 40 the time-averaged
        // population must sit in that neighborhood, and the engine's
        // live problem must agree with its own map.
        let mut e = engine(cfg(300));
        for _ in 0..300 {
            e.step(&GreedyRate, ServicePolicy::PlainRates);
        }
        assert_eq!(e.population(), e.problem().len());
        let pop = e.population() as f64;
        assert!(
            (20.0..=140.0).contains(&pop),
            "population {pop} wandered far from equilibrium 60"
        );
    }

    #[test]
    fn engine_state_matches_a_fresh_rebuild_every_step() {
        // The live problem is only ever touched by per-slot
        // `Problem::apply` transactions; after a burst of churn it must
        // still be bit-identical to a from-scratch build over its own
        // links.
        let mut e = engine_sized(
            20,
            ChurnConfig {
                slots: 40,
                link_arrival_rate: 3.0,
                mean_lifetime: 8.0,
                packet_prob: 0.2,
                seed: 11,
            },
        );
        for _ in 0..40 {
            e.step(&Rle::new(), ServicePolicy::PlainRates);
        }
        let p = e.problem();
        let rebuilt = Problem::builder(
            fading_net::LinkSet::new(*p.links().region(), p.links().links().to_vec()),
            *p.params(),
        )
        .epsilon(p.epsilon())
        .backend(p.backend_choice())
        .build();
        assert_eq!(p, &rebuilt);
    }

    #[test]
    fn sub_cache_mirrors_the_backlogged_restriction() {
        // The incrementally patched sub-problem must stay an exact
        // restriction: same membership as this slot's backlog, each
        // member's geometry identical to its live counterpart, and the
        // whole sub bit-equivalent to a fresh build over its own links
        // (rates included — MaxWeight rewrites them in place each
        // slot, so the weights ride along into the rebuild).
        let mut e = engine(cfg(150));
        let mut patched_slots = 0;
        for _ in 0..150 {
            e.step(&GreedyRate, ServicePolicy::MaxWeight);
            if e.backlogged.is_empty() {
                continue;
            }
            let cache = e.sub.as_ref().expect("backlog scheduled ⇒ cache");
            patched_slots += 1;
            assert_eq!(cache.sub.len(), e.backlogged.len());
            assert_eq!(cache.map.len(), cache.sub.len());
            assert_eq!(cache.main_of.len(), cache.sub.len());
            let mut want: Vec<u64> = e.backlogged.iter().map(|d| e.map.external(*d)).collect();
            let mut got: Vec<u64> = cache.sub_of.keys().copied().collect();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(want, got, "cache membership drifted from the backlog");
            for dense in 0..cache.sub.len() as u32 {
                let sub_link = cache.sub.links().link(LinkId(dense));
                let ext = cache.main_of[&cache.map.external(LinkId(dense))];
                let main_link = e.problem.links().link(e.map.dense(ext).expect("live"));
                assert_eq!(sub_link.sender, main_link.sender);
                assert_eq!(sub_link.receiver, main_link.receiver);
            }
            let p = &cache.sub;
            let rebuilt = Problem::builder(
                fading_net::LinkSet::new(*p.links().region(), p.links().links().to_vec()),
                *p.params(),
            )
            .epsilon(p.epsilon())
            .backend(p.backend_choice())
            .build();
            assert_eq!(p, &rebuilt, "patched sub-problem diverged from rebuild");
        }
        assert!(patched_slots > 50, "backlog was almost always empty");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_arm_shims_still_arm() {
        let mut e = engine(cfg(10));
        e.arm_phases();
        assert!(e.telemetry().is_some());
        e.arm_series(SlotSeries::in_memory(fading_obs::SeriesConfig::default()));
        e.arm_flight(FlightConfig::default(), None);
        for _ in 0..10 {
            e.step(&GreedyRate, ServicePolicy::MaxWeight);
        }
        let tel = e.take_telemetry().expect("armed");
        assert!(tel.series().is_some());
        assert_eq!(tel.series().unwrap().recorded(), 10);
        assert_eq!(tel.health(), "ok");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = engine(cfg(120)).run(&GreedyRate, ServicePolicy::MaxWeight);
        let b = engine(cfg(120)).run(&GreedyRate, ServicePolicy::MaxWeight);
        // slots_per_sec is wall-clock; everything else must match.
        assert_eq!(
            (a.links_arrived, a.links_departed, a.packets_arrived),
            (b.links_arrived, b.links_departed, b.packets_arrived)
        );
        assert_eq!(
            (a.packets_delivered, a.packets_abandoned, a.final_backlog),
            (b.packets_delivered, b.packets_abandoned, b.final_backlog)
        );
        assert_eq!(a.final_population, b.final_population);
    }

    #[test]
    fn sparse_backend_runs_the_same_loop() {
        let c = ChurnConfig {
            slots: 60,
            link_arrival_rate: 1.0,
            mean_lifetime: 20.0,
            packet_prob: 0.1,
            seed: 3,
        };
        let geometry = UniformGenerator::paper(30);
        let problem = Problem::builder(geometry.generate(c.seed), ChannelParams::with_alpha(3.0))
            .backend(BackendChoice::Sparse(fading_core::SparseConfig::default()))
            .build();
        let mut e = ChurnEngine::new(problem, geometry, c);
        let r = e.run(&GreedyRate, ServicePolicy::MaxWeight);
        assert!(r.conserves_packets(), "{r:?}");
    }

    #[test]
    fn heavier_load_means_more_backlog() {
        let base = ChurnConfig {
            slots: 250,
            link_arrival_rate: 0.5,
            mean_lifetime: 60.0,
            packet_prob: 0.0, // overridden by the frontier
            seed: 19,
        };
        let geometry = UniformGenerator::paper(60);
        let problem =
            Problem::builder(geometry.generate(base.seed), ChannelParams::with_alpha(3.0)).build();
        let frontier = stability_frontier(
            &problem,
            geometry,
            base,
            &GreedyRate,
            ServicePolicy::MaxWeight,
            &[0.01, 0.9],
        );
        assert_eq!(frontier.len(), 2);
        assert!(
            frontier[1].1.mean_backlog > frontier[0].1.mean_backlog,
            "overload backlog {} must exceed light-load backlog {}",
            frontier[1].1.mean_backlog,
            frontier[0].1.mean_backlog
        );
    }

    #[test]
    fn phase_timings_sum_close_to_slot_span() {
        // Acceptance: the five attributed phases must account for the
        // slot span to within 5% (aggregated over the run, so one
        // preempted slot cannot fail the audit). The ring always keeps
        // timings, regardless of the stream's determinism mode.
        let mut e = engine(cfg(120));
        e.arm(
            TelemetryConfig::new().series(SlotSeries::in_memory(fading_obs::SeriesConfig {
                capacity: 200,
                ..Default::default()
            })),
        );
        for _ in 0..120 {
            e.step(&GreedyRate, ServicePolicy::MaxWeight);
        }
        let tel = e.take_telemetry().expect("telemetry armed");
        let series = tel.series().expect("series armed");
        assert_eq!(series.recorded(), 120);
        let mut phases = 0u64;
        let mut spans = 0u64;
        for rec in series.records() {
            assert!(rec.slot_ns > 0, "armed slots must be timed");
            phases += rec.phase_sum_ns();
            spans += rec.slot_ns;
        }
        let ratio = phases as f64 / spans as f64;
        assert!(
            (0.95..=1.0).contains(&ratio),
            "phase attribution covers {ratio:.4} of the slot span"
        );
        let split = tel.phase_split();
        assert!(split.iter().sum::<u32>() <= 100);
        assert!(split.iter().any(|&p| p > 0), "split {split:?} all zero");
    }

    #[test]
    fn series_ring_mirrors_the_slot_outputs_deterministically() {
        // Two same-seed runs must produce byte-identical deterministic
        // series lines, and each record must agree with the ChurnSlot
        // the engine returned for that slot.
        let run = |check_slots: bool| -> String {
            let mut e = engine(cfg(100));
            e.arm(
                TelemetryConfig::new().series(SlotSeries::in_memory(fading_obs::SeriesConfig {
                    capacity: 128,
                    ..Default::default()
                })),
            );
            for _ in 0..100 {
                let slot = e.step(&GreedyRate, ServicePolicy::MaxWeight);
                if check_slots {
                    let rec = *e
                        .telemetry()
                        .and_then(|t| t.series())
                        .and_then(|s| s.last())
                        .expect("record per slot");
                    assert_eq!(rec.slot, slot.slot);
                    assert_eq!(rec.population, slot.population as u64);
                    assert_eq!(rec.scheduled, slot.scheduled as u64);
                    assert_eq!(rec.delivered, slot.delivered as u64);
                    assert_eq!(rec.backlog, slot.backlog);
                    assert_eq!(rec.eliminated, rec.backlogged - rec.scheduled);
                }
            }
            let tel = e.take_telemetry().unwrap();
            let mut out = String::new();
            for rec in tel.series().unwrap().records() {
                out.push_str(&SlotSeries::render_line(rec, false));
            }
            out
        };
        let a = run(true);
        let b = run(false);
        assert!(!a.is_empty());
        assert_eq!(a, b, "deterministic series lines diverged across reruns");
        assert!(!a.contains("_ns"), "timing fields leaked into det mode");
    }

    #[test]
    fn queue_blowup_dumps_a_replayable_postmortem_bundle() {
        // Overload a small instance (every link draws a packet every
        // slot) so backlog grows strictly; the flight recorder must
        // fire QueueGrowth, dump the bundle, and the replay half of the
        // bundle must replay cleanly against the saved sub-instance.
        // The engine owns the global trace ring while capturing; this
        // is the only test in the binary that traces.
        fading_obs::set_tracing(false);
        let _ = fading_obs::take_trace();
        let dir = std::env::temp_dir().join(format!("churn_flight_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut e = engine_sized(
            20,
            ChurnConfig {
                slots: 400,
                link_arrival_rate: 0.5,
                mean_lifetime: 40.0,
                packet_prob: 1.0,
                seed: 23,
            },
        );
        e.arm(TelemetryConfig::new().flight(
            FlightConfig {
                capacity: 16,
                growth_window: 6,
                min_stall_ns: u64::MAX,
                zero_delivery_window: u32::MAX,
                ..Default::default()
            },
            Some(dir.clone()),
        ));
        let mut fired_at = None;
        for t in 0..400 {
            e.step(&GreedyRate, ServicePolicy::MaxWeight);
            if e.health() != "ok" {
                fired_at = Some(t);
                break;
            }
        }
        assert!(fired_at.is_some(), "overload never tripped the detector");
        assert_eq!(e.health(), "queue_growth");
        let tel = e.take_telemetry().unwrap();
        assert_eq!(tel.postmortem(), Some(dir.as_path()));

        // The bundle: post-mortem doc + forensic trace + replay half.
        let doc = serde_json::parse_node_str(
            &std::fs::read_to_string(dir.join("postmortem.json")).unwrap(),
        )
        .unwrap();
        assert_eq!(
            doc.get("version"),
            Some(&serde::Node::U64(u64::from(fading_obs::POSTMORTEM_VERSION)))
        );
        assert!(doc
            .get("anomaly")
            .and_then(|a| a.get("QueueGrowth"))
            .is_some());
        assert!(dir.join("flight_trace.jsonl").exists());

        // Acceptance: replay_trace.jsonl replays against the saved
        // sub-instance under certify::replay_trace.
        let trace = fading_obs::Trace::from_jsonl(
            &std::fs::read_to_string(dir.join("replay_trace.jsonl")).unwrap(),
        )
        .unwrap();
        assert!(!trace.events.is_empty());
        let links = fading_net::io::load(&dir.join("replay_instance.json")).unwrap();
        let meta = serde_json::parse_node_str(
            &std::fs::read_to_string(dir.join("replay_meta.json")).unwrap(),
        )
        .unwrap();
        let eps = match meta.get("epsilon") {
            Some(serde::Node::F64(x)) => *x,
            other => panic!("epsilon missing from replay meta: {other:?}"),
        };
        let rebuilt = Problem::builder(links, ChannelParams::with_alpha(3.0))
            .epsilon(eps)
            .build();
        let certs = fading_core::certify::replay_trace(&rebuilt, &trace)
            .expect("post-mortem trace must replay");
        assert!(!certs.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Delegates to [`GreedyRate`] but sleeps once, well after the
    /// stall detector's warmup — the injected anomaly.
    struct Sleepy {
        calls: std::sync::atomic::AtomicU64,
    }

    impl Scheduler for Sleepy {
        fn name(&self) -> &'static str {
            "sleepy"
        }

        fn schedule_in(&self, problem: &Problem, ctx: &mut SchedCtx) -> fading_core::Schedule {
            let n = self
                .calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if n == 20 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            GreedyRate.schedule_in(problem, ctx)
        }
    }

    #[test]
    fn injected_stall_fires_the_stall_detector() {
        let mut e = engine(ChurnConfig {
            packet_prob: 0.5, // busy enough that every slot schedules
            ..cfg(80)
        });
        e.arm(TelemetryConfig::new().flight(
            FlightConfig {
                stall_factor: 4.0,
                min_stall_ns: 2_000_000, // 2ms floor; the sleep is 30ms
                growth_window: u32::MAX,
                zero_delivery_window: u32::MAX,
                capture_trace: false,
                ..Default::default()
            },
            None, // detect, don't dump
        ));
        let sleepy = Sleepy {
            calls: std::sync::atomic::AtomicU64::new(0),
        };
        for _ in 0..80 {
            e.step(&sleepy, ServicePolicy::MaxWeight);
            if e.health() != "ok" {
                break;
            }
        }
        assert_eq!(e.health(), "slot_stall");
        assert!(e.telemetry().unwrap().postmortem().is_none());
    }

    /// Schedules nothing, ever — the zero-delivery pathology.
    struct Noop;

    impl Scheduler for Noop {
        fn name(&self) -> &'static str {
            "noop"
        }

        fn schedule_in(&self, _problem: &Problem, _ctx: &mut SchedCtx) -> fading_core::Schedule {
            fading_core::Schedule::empty()
        }
    }

    #[test]
    fn zero_delivery_streak_fires_on_a_dead_scheduler() {
        let mut e = engine(ChurnConfig {
            packet_prob: 0.6,
            ..cfg(60)
        });
        e.arm(TelemetryConfig::new().flight(
            FlightConfig {
                zero_delivery_window: 5,
                growth_window: u32::MAX,
                min_stall_ns: u64::MAX,
                capture_trace: false,
                ..Default::default()
            },
            None,
        ));
        for _ in 0..60 {
            e.step(&Noop, ServicePolicy::PlainRates);
            if e.health() != "ok" {
                break;
            }
        }
        assert_eq!(e.health(), "zero_delivery_streak");
    }

    #[test]
    fn poisson_mean_is_right() {
        let mut rng = seeded_rng(1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(3.0, &mut rng) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "poisson mean {mean}");
        assert_eq!(poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn lifetimes_last_at_least_one_slot() {
        let mut rng = seeded_rng(2);
        for t in [0u64, 5, 100] {
            for _ in 0..200 {
                assert!(exponential_departure(t, 1.0, &mut rng) > t);
            }
        }
    }
}
