//! Result rows, text tables, CSV, and JSON output.

use crate::monte_carlo::MonteCarloStats;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One (sweep value, algorithm) measurement, aggregated over instances
/// and trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultRow {
    /// Name of the swept parameter (`"N"` or `"alpha"`).
    pub x_label: String,
    /// Value of the swept parameter.
    pub x: f64,
    /// Algorithm name.
    pub algorithm: String,
    /// Mean number of scheduled links per instance.
    pub scheduled_mean: f64,
    /// Mean scheduled rate per instance.
    pub scheduled_rate_mean: f64,
    /// Mean failed transmissions per slot (across instances × trials).
    pub failed_mean: f64,
    /// 95% CI half-width of the failed mean.
    pub failed_ci95: f64,
    /// Mean delivered rate per slot.
    pub throughput_mean: f64,
    /// 95% CI half-width of the throughput mean.
    pub throughput_ci95: f64,
    /// Instances aggregated.
    pub instances: usize,
    /// Trials per instance.
    pub trials: u64,
}

impl ResultRow {
    /// Mean per-link failure probability: `failed_mean / scheduled_mean`
    /// (0 when nothing was scheduled). Fig. 5(b)'s "failures shrink
    /// with α" claim is monotone in this rate; the absolute count is
    /// confounded by the α-dependent schedule size (see EXPERIMENTS.md).
    pub fn per_link_failure_rate(&self) -> f64 {
        if self.scheduled_mean == 0.0 {
            0.0
        } else {
            self.failed_mean / self.scheduled_mean
        }
    }
}

/// A collection of rows with rendering helpers.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResultTable {
    /// The measurements.
    pub rows: Vec<ResultRow>,
}

impl ResultTable {
    /// Wraps rows in a table.
    pub fn new(rows: Vec<ResultRow>) -> Self {
        Self { rows }
    }

    /// Rows for one algorithm, in sweep order.
    pub fn series(&self, algorithm: &str) -> Vec<&ResultRow> {
        self.rows
            .iter()
            .filter(|r| r.algorithm == algorithm)
            .collect()
    }

    /// The distinct algorithm names, in first-appearance order.
    pub fn algorithms(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for r in &self.rows {
            if !names.contains(&r.algorithm.as_str()) {
                names.push(&r.algorithm);
            }
        }
        names
    }

    /// Renders an aligned text table (one line per row).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:<18} {:>10} {:>12} {:>14} {:>14}",
            "x_label", "x", "algorithm", "scheduled", "failed/slot", "±95%", "throughput"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>8} {:>8.3} {:<18} {:>10.2} {:>12.4} {:>14.4} {:>14.3}",
                r.x_label,
                r.x,
                r.algorithm,
                r.scheduled_mean,
                r.failed_mean,
                r.failed_ci95,
                r.throughput_mean
            );
        }
        out
    }

    /// Renders CSV with a header line.
    pub fn render_csv(&self) -> String {
        let mut out = String::from(
            "x_label,x,algorithm,scheduled_mean,scheduled_rate_mean,failed_mean,failed_ci95,throughput_mean,throughput_ci95,instances,trials\n",
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{}",
                r.x_label,
                r.x,
                r.algorithm,
                r.scheduled_mean,
                r.scheduled_rate_mean,
                r.failed_mean,
                r.failed_ci95,
                r.throughput_mean,
                r.throughput_ci95,
                r.instances,
                r.trials
            );
        }
        out
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ResultTable serialization cannot fail")
    }
}

/// Builds a row from per-instance Monte-Carlo stats.
pub fn aggregate_row(
    x_label: &str,
    x: f64,
    algorithm: &str,
    per_instance: &[MonteCarloStats],
) -> ResultRow {
    assert!(!per_instance.is_empty(), "need at least one instance");
    let n = per_instance.len() as f64;
    let scheduled_mean = per_instance.iter().map(|s| s.scheduled as f64).sum::<f64>() / n;
    let scheduled_rate_mean = per_instance.iter().map(|s| s.scheduled_rate).sum::<f64>() / n;
    // Means of means (each instance weighs equally, as in the paper's
    // per-point averages); CI via the pooled per-instance CI widths.
    let failed_mean = per_instance.iter().map(|s| s.failed.mean).sum::<f64>() / n;
    let throughput_mean = per_instance.iter().map(|s| s.throughput.mean).sum::<f64>() / n;
    // Conservative pooled CI: RMS of instance CIs scaled by 1/√instances.
    let pooled = |f: &dyn Fn(&MonteCarloStats) -> f64| -> f64 {
        (per_instance.iter().map(|s| f(s).powi(2)).sum::<f64>() / n).sqrt() / n.sqrt()
    };
    ResultRow {
        x_label: x_label.to_string(),
        x,
        algorithm: algorithm.to_string(),
        scheduled_mean,
        scheduled_rate_mean,
        failed_mean,
        failed_ci95: pooled(&|s| s.failed.ci95),
        throughput_mean,
        throughput_ci95: pooled(&|s| s.throughput.ci95),
        instances: per_instance.len(),
        trials: per_instance.first().map_or(0, |s| s.failed.count),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_math::Summary;

    fn stats(scheduled: usize, failed_mean: f64, throughput_mean: f64) -> MonteCarloStats {
        let s = |mean: f64| Summary {
            count: 100,
            mean,
            std_dev: 0.1,
            ci95: 0.02,
            min: 0.0,
            max: mean * 2.0,
        };
        MonteCarloStats {
            scheduled,
            scheduled_rate: scheduled as f64,
            failed: s(failed_mean),
            throughput: s(throughput_mean),
        }
    }

    #[test]
    fn aggregate_averages_across_instances() {
        let row = aggregate_row(
            "N",
            100.0,
            "RLE",
            &[stats(10, 0.2, 9.8), stats(20, 0.4, 19.6)],
        );
        assert_eq!(row.scheduled_mean, 15.0);
        assert!((row.failed_mean - 0.3).abs() < 1e-12);
        assert!((row.throughput_mean - 14.7).abs() < 1e-12);
        assert_eq!(row.instances, 2);
        assert_eq!(row.trials, 100);
    }

    #[test]
    fn table_series_filters_by_algorithm() {
        let rows = vec![
            aggregate_row("N", 100.0, "RLE", &[stats(10, 0.1, 9.9)]),
            aggregate_row("N", 100.0, "LDP", &[stats(5, 0.0, 5.0)]),
            aggregate_row("N", 200.0, "RLE", &[stats(12, 0.1, 11.9)]),
        ];
        let t = ResultTable::new(rows);
        assert_eq!(t.series("RLE").len(), 2);
        assert_eq!(t.series("LDP").len(), 1);
        assert_eq!(t.algorithms(), vec!["RLE", "LDP"]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = ResultTable::new(vec![aggregate_row("N", 1.0, "X", &[stats(1, 0.0, 1.0)])]);
        let csv = t.render_csv();
        assert!(csv.starts_with("x_label,"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn text_render_is_aligned_per_row() {
        let t = ResultTable::new(vec![aggregate_row("N", 1.0, "X", &[stats(1, 0.0, 1.0)])]);
        let text = t.render_text();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("algorithm"));
    }

    #[test]
    fn json_roundtrip() {
        let t = ResultTable::new(vec![aggregate_row("a", 2.5, "Y", &[stats(3, 0.5, 2.5)])]);
        let back: ResultTable = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn aggregate_rejects_empty() {
        aggregate_row("N", 1.0, "X", &[]);
    }
}
