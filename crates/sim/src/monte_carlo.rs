//! Parallel Monte-Carlo estimation of slot metrics.
//!
//! Trials are embarrassingly parallel: each gets an independent RNG
//! stream derived from `(base_seed, trial_index)` via SplitMix, so the
//! result is bit-identical regardless of thread count. Per-thread
//! partials are Welford accumulators merged exactly (Chan's update).

use crate::slot::simulate_slot;
use fading_core::{Problem, Schedule};
use fading_math::{seeded_rng, split_seed, OnlineStats, Summary};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Aggregated Monte-Carlo statistics for one (problem, schedule) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloStats {
    /// Number of scheduled links.
    pub scheduled: usize,
    /// Total scheduled rate (the throughput if nothing faded).
    pub scheduled_rate: f64,
    /// Failed transmissions per slot.
    pub failed: Summary,
    /// Delivered rate per slot (realized throughput).
    pub throughput: Summary,
}

/// Number of trials below which the parallel split isn't worth it.
const PARALLEL_TRIALS_THRESHOLD: u64 = 32;

/// Runs `trials` independent slot realizations of `schedule`.
///
/// ```
/// use fading_core::{algo::Rle, Problem, Scheduler};
/// use fading_net::{TopologyGenerator, UniformGenerator};
/// use fading_sim::{simulate_many, BatchRunner};
///
/// let problem = Problem::paper(UniformGenerator::paper(80).generate(3), 3.0);
/// // Batched sweeps schedule through a pooled workspace.
/// let schedule = BatchRunner::new().schedule(&Rle::new(), &problem);
/// let stats = simulate_many(&problem, &schedule, 200, 42);
/// // The ε = 1% target holds empirically.
/// assert!(stats.failed.mean <= 0.01 * schedule.len() as f64 + 0.3);
/// // Bit-reproducible: same seed, same numbers.
/// assert_eq!(stats, simulate_many(&problem, &schedule, 200, 42));
/// ```
pub fn simulate_many(
    problem: &Problem,
    schedule: &Schedule,
    trials: u64,
    base_seed: u64,
) -> MonteCarloStats {
    assert!(trials > 0, "at least one trial is required");
    let one = |t: u64| -> (f64, f64) {
        let mut rng = seeded_rng(split_seed(base_seed, t));
        let out = simulate_slot(problem, schedule, &mut rng);
        (out.failed_count() as f64, out.delivered_rate)
    };
    let (failed, throughput) = if trials >= PARALLEL_TRIALS_THRESHOLD {
        (0..trials)
            .into_par_iter()
            .fold(
                || (OnlineStats::new(), OnlineStats::new()),
                |(mut f, mut th), t| {
                    let (fc, dr) = one(t);
                    f.push(fc);
                    th.push(dr);
                    (f, th)
                },
            )
            .reduce(
                || (OnlineStats::new(), OnlineStats::new()),
                |(mut f1, mut t1), (f2, t2)| {
                    f1.merge(&f2);
                    t1.merge(&t2);
                    (f1, t1)
                },
            )
    } else {
        let mut f = OnlineStats::new();
        let mut th = OnlineStats::new();
        for t in 0..trials {
            let (fc, dr) = one(t);
            f.push(fc);
            th.push(dr);
        }
        (f, th)
    };
    fading_obs::counter!("sim.mc.trials").add(trials);
    fading_obs::counter!("sim.mc.batches").incr();
    MonteCarloStats {
        scheduled: schedule.len(),
        scheduled_rate: schedule.utility(problem),
        failed: failed.summary(),
        throughput: throughput.summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_core::algo::{ApproxDiversity, Rle};
    use fading_core::{FeasibilityReport, Scheduler};
    use fading_net::{LinkId, TopologyGenerator, UniformGenerator};

    fn problem(n: usize, seed: u64) -> Problem {
        Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0)
    }

    #[test]
    fn deterministic_across_runs() {
        let p = problem(60, 1);
        let s = Rle::new().schedule(&p);
        let a = simulate_many(&p, &s, 200, 42);
        let b = simulate_many(&p, &s, 200, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        // 16 trials run sequentially, 200 run in parallel; re-running
        // the first 16 of the parallel path must match the sequential
        // result because streams are per-trial.
        let p = problem(40, 2);
        let s = Rle::new().schedule(&p);
        let seq = simulate_many(&p, &s, 16, 7);
        let par = simulate_many(&p, &s, 200, 7);
        // Not the same trial count, but trial 0..16 streams coincide;
        // verify by running 16 trials through the parallel path
        // (threshold is 32, so force it by calling with 33 and checking
        // determinism instead).
        assert_eq!(seq, simulate_many(&p, &s, 16, 7));
        assert_eq!(par, simulate_many(&p, &s, 200, 7));
    }

    #[test]
    fn feasible_schedule_failure_rate_is_within_epsilon() {
        // RLE schedules target per-link failure ≤ ε = 1%; the expected
        // failed count per slot is ≤ ε·|S|.
        let p = problem(200, 3);
        let s = Rle::new().schedule(&p);
        let stats = simulate_many(&p, &s, 4000, 11);
        let bound = p.epsilon() * s.len() as f64;
        assert!(
            stats.failed.mean <= bound + 3.0 * stats.failed.ci95.max(1e-3),
            "mean failed {} vs ε·|S| {}",
            stats.failed.mean,
            bound
        );
    }

    #[test]
    fn empirical_failures_match_analytic_success_probabilities() {
        // E[failures] = Σ_j (1 − Pr(X_j ≥ γ_th)) with the closed form
        // from Theorem 3.1 — the simulator must agree with the math.
        let p = problem(150, 4);
        let s = ApproxDiversity::new().schedule(&p);
        let report = FeasibilityReport::evaluate(&p, &s);
        let analytic: f64 = report
            .entries()
            .iter()
            .map(|e| 1.0 - e.success_probability)
            .sum();
        let stats = simulate_many(&p, &s, 6000, 13);
        assert!(
            (stats.failed.mean - analytic).abs() <= 4.0 * stats.failed.ci95 + 0.05,
            "empirical {} vs analytic {}",
            stats.failed.mean,
            analytic
        );
    }

    #[test]
    fn throughput_plus_failures_account_for_all_links() {
        // Unit rates: throughput + failed = |S| in every realization,
        // hence also in means.
        let p = problem(100, 5);
        let s = ApproxDiversity::new().schedule(&p);
        let stats = simulate_many(&p, &s, 500, 17);
        let total = stats.throughput.mean + stats.failed.mean;
        assert!(
            (total - s.len() as f64).abs() < 1e-9,
            "throughput {} + failed {} != |S| {}",
            stats.throughput.mean,
            stats.failed.mean,
            s.len()
        );
    }

    #[test]
    fn singleton_schedule_never_fails() {
        let p = problem(10, 6);
        let s = fading_core::Schedule::from_ids([LinkId(0)]);
        let stats = simulate_many(&p, &s, 300, 19);
        assert_eq!(stats.failed.mean, 0.0);
        assert_eq!(stats.throughput.mean, 1.0);
        assert_eq!(stats.scheduled, 1);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn rejects_zero_trials() {
        let p = problem(5, 7);
        simulate_many(&p, &Schedule::empty(), 0, 0);
    }
}
