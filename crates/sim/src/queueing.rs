//! Packet-level queueing on top of per-slot scheduling.
//!
//! The paper schedules one saturated slot; a deployed network runs the
//! scheduler every slot over whatever is *backlogged*. This module
//! closes that loop: Bernoulli packet arrivals per link, per-slot
//! scheduling restricted to backlogged links, Rayleigh channel
//! realizations deciding actual delivery, FIFO queues, delay
//! accounting. The `ext_queueing` experiment locates each scheduler's
//! stability region (offered load vs backlog growth).

use crate::slot::simulate_slot;
use fading_core::{Problem, Scheduler};
use fading_math::{seeded_rng, split_seed, OnlineStats};
use fading_net::LinkId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration for a queueing run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Per-link probability of one packet arrival per slot.
    pub arrival_prob: f64,
    /// Number of simulated slots.
    pub slots: u64,
    /// RNG seed (arrivals and channel draws derive from it).
    pub seed: u64,
}

/// Aggregate results of a queueing run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct QueueResult {
    /// Packets that arrived.
    pub arrived: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Mean delivery delay in slots (arrival slot → delivery slot);
    /// `None` when nothing was delivered (a mean over zero samples has
    /// no value). Old manifests with a plain number still deserialize.
    pub mean_delay: Option<f64>,
    /// Time-averaged total backlog (packets waiting, sampled per slot).
    pub mean_backlog: f64,
    /// Largest backlog observed.
    pub max_backlog: u64,
    /// Backlog remaining when the run ended.
    pub final_backlog: u64,
    /// The simulated horizon, recorded so [`throughput`](Self::throughput)
    /// can never be handed a wrong denominator. Old manifests without
    /// the field deserialize to `0` (throughput then reads `0`).
    pub slots: u64,
}

// The vendored serde derive requires every named field to be present;
// this manual impl instead treats the fields added after the first
// manifests shipped (`slots`; a possibly-null `mean_delay`) as
// optional, so old manifests still load.
impl Deserialize for QueueResult {
    fn deserialize_node(node: &serde::Node) -> Result<Self, serde::DeError> {
        fn field<T: Deserialize>(node: &serde::Node, name: &str) -> Result<T, serde::DeError> {
            Deserialize::deserialize_node(
                node.get(name)
                    .ok_or_else(|| serde::DeError(format!("missing field `{name}`")))?,
            )
        }
        if !matches!(node, serde::Node::Map(_)) {
            return Err(serde::DeError(
                "invalid type: expected a map for struct QueueResult".to_string(),
            ));
        }
        Ok(Self {
            arrived: field(node, "arrived")?,
            delivered: field(node, "delivered")?,
            mean_delay: match node.get("mean_delay") {
                None => None,
                Some(n) => Deserialize::deserialize_node(n)?,
            },
            mean_backlog: field(node, "mean_backlog")?,
            max_backlog: field(node, "max_backlog")?,
            final_backlog: field(node, "final_backlog")?,
            slots: match node.get("slots") {
                None => 0,
                Some(n) => Deserialize::deserialize_node(n)?,
            },
        })
    }
}

impl QueueResult {
    /// Delivered throughput in packets/slot over the run's own horizon.
    pub fn throughput(&self) -> f64 {
        if self.slots == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.slots as f64
    }
}

/// How per-slot service decisions weigh the backlog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServicePolicy {
    /// Schedule the backlogged sub-instance with the links' own rates
    /// (the paper's objective applied per slot).
    PlainRates,
    /// MaxWeight / backpressure: rate of each backlogged link is its
    /// queue length, so the scheduler chases the longest queues — the
    /// classic throughput-optimal policy of Tassiulas–Ephremides.
    MaxWeight,
}

/// Runs the queueing simulation.
///
/// Each slot: arrivals → schedule the backlogged sub-instance →
/// realize the Rayleigh channel → successful links pop one packet.
///
/// # Panics
/// Panics unless `0 < arrival_prob ≤ 1` and `slots > 0`.
pub fn simulate_queueing<S: Scheduler + ?Sized>(
    problem: &Problem,
    scheduler: &S,
    cfg: &QueueConfig,
) -> QueueResult {
    simulate_queueing_with_policy(problem, scheduler, cfg, ServicePolicy::PlainRates)
}

/// [`simulate_queueing`] with an explicit [`ServicePolicy`].
pub fn simulate_queueing_with_policy<S: Scheduler + ?Sized>(
    problem: &Problem,
    scheduler: &S,
    cfg: &QueueConfig,
    policy: ServicePolicy,
) -> QueueResult {
    assert!(
        cfg.arrival_prob > 0.0 && cfg.arrival_prob <= 1.0,
        "arrival probability must be in (0,1], got {}",
        cfg.arrival_prob
    );
    assert!(cfg.slots > 0, "need at least one slot");
    let n = problem.len();
    let mut queues: Vec<VecDeque<u64>> = vec![VecDeque::new(); n];
    let mut arrival_rng = seeded_rng(split_seed(cfg.seed, 0));
    let mut delays = OnlineStats::new();
    let mut backlog_stats = OnlineStats::new();
    let mut arrived = 0u64;
    let mut delivered = 0u64;
    let mut max_backlog = 0u64;
    let progress = fading_obs::Progress::new("queueing", "slots", cfg.slots);
    let tracing = fading_obs::tracing_enabled();
    // One workspace for the whole run: the first busy slot sizes the
    // arenas and every later slot schedules allocation-free.
    let mut ctx = fading_core::SchedCtx::new();
    // The most recent restricted descendant, its mapping, and the
    // backlogged set that produced it — reused verbatim while the
    // alive set stays unchanged between busy slots.
    let mut cached: Option<(Problem, Vec<LinkId>, Vec<LinkId>)> = None;

    for t in 0..cfg.slots {
        // Arrivals.
        for q in queues.iter_mut() {
            if arrival_rng.gen::<f64>() < cfg.arrival_prob {
                q.push_back(t);
                arrived += 1;
            }
        }
        // Backlogged sub-instance.
        let mut backlogged: Vec<LinkId> = (0..n as u32)
            .map(LinkId)
            .filter(|id| !queues[id.index()].is_empty())
            .collect();
        if tracing {
            // Bracket the scheduler's trace block (which uses residual
            // ids) with the slot number and backlog it saw.
            fading_obs::trace::publish(vec![fading_obs::TraceEvent::SlotStart {
                slot: t,
                backlog: backlogged.len() as u32,
            }]);
        }
        if !backlogged.is_empty() {
            // Derive the residual instance from the parent: power
            // scales and the interference backend survive, and the
            // interference state is sliced, not rebuilt. When the
            // alive set did not change since the previous busy slot
            // (common at light load and deep overload), even the slice
            // is skipped — the cached descendant is content-identical,
            // so schedules are bit-identical either way (its stamp also
            // stays put, letting the ctx order memo short-circuit).
            let reusable = cached
                .as_ref()
                .is_some_and(|(_, _, prev)| *prev == backlogged);
            if !reusable {
                let (sub, mapping) = problem.restrict(&backlogged);
                cached = Some((sub, mapping, std::mem::take(&mut backlogged)));
            } else {
                fading_obs::counter!("sim.queueing.restrict_reuse").incr();
            }
            let (base, mapping, _) = cached.as_ref().expect("just filled");
            let sub: std::borrow::Cow<Problem> = if policy == ServicePolicy::MaxWeight {
                // Reweight each backlogged link by its queue length so
                // rate-aware schedulers implement backpressure. Rates
                // never enter the interference factors, so this swaps
                // link weights without touching geometry state.
                let weights: Vec<f64> = mapping
                    .iter()
                    .map(|orig| (queues[orig.index()].len() as f64).max(1e-9))
                    .collect();
                std::borrow::Cow::Owned(base.with_link_rates(&weights))
            } else {
                std::borrow::Cow::Borrowed(base)
            };
            let schedule = scheduler.schedule_in(&sub, &mut ctx);
            if tracing {
                fading_obs::trace::publish(vec![fading_obs::TraceEvent::SlotEnd {
                    slot: t,
                    links: schedule.iter().map(|id| mapping[id.index()].0).collect(),
                }]);
            }
            // Channel realization decides actual delivery.
            let mut rng = seeded_rng(split_seed(cfg.seed, t + 1));
            let outcome = simulate_slot(&sub, &schedule, &mut rng);
            for sub_id in outcome.successes {
                let orig = mapping[sub_id.index()];
                if let Some(arrival_t) = queues[orig.index()].pop_front() {
                    delivered += 1;
                    delays.push((t - arrival_t) as f64);
                }
            }
            // This slot's member buffer becomes the next slot's output.
            ctx.recycle(schedule);
        } else if tracing {
            fading_obs::trace::publish(vec![fading_obs::TraceEvent::SlotEnd {
                slot: t,
                links: Vec::new(),
            }]);
        }
        let backlog: u64 = queues.iter().map(|q| q.len() as u64).sum();
        backlog_stats.push(backlog as f64);
        max_backlog = max_backlog.max(backlog);
        progress.report(t + 1, &format!("backlog {backlog}"), t + 1);
    }

    QueueResult {
        arrived,
        delivered,
        mean_delay: (delivered > 0).then(|| delays.mean()),
        mean_backlog: backlog_stats.mean(),
        max_backlog,
        final_backlog: queues.iter().map(|q| q.len() as u64).sum(),
        slots: cfg.slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_core::algo::{GreedyRate, Rle};
    use fading_net::{TopologyGenerator, UniformGenerator};

    fn problem(n: usize, seed: u64) -> Problem {
        Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0)
    }

    fn cfg(p: f64, slots: u64) -> QueueConfig {
        QueueConfig {
            arrival_prob: p,
            slots,
            seed: 42,
        }
    }

    #[test]
    fn conservation_arrived_equals_delivered_plus_backlog() {
        let p = problem(80, 1);
        let r = simulate_queueing(&p, &GreedyRate, &cfg(0.05, 400));
        assert_eq!(r.arrived, r.delivered + r.final_backlog);
    }

    #[test]
    fn light_load_is_stable_with_small_delay() {
        // 100 links × 0.001 arrivals/slot = 0.1 packets/slot offered;
        // GreedyRate serves ~40/slot — queues must stay tiny.
        let p = problem(100, 2);
        let r = simulate_queueing(&p, &GreedyRate, &cfg(0.001, 1500));
        assert!(r.arrived > 50, "sanity: some packets arrived");
        assert!(
            r.final_backlog <= 3,
            "light load left {} packets queued",
            r.final_backlog
        );
        let delay = r.mean_delay.expect("packets were delivered");
        assert!(delay < 5.0, "mean delay {delay}");
        assert_eq!(r.slots, 1500);
        assert!((r.throughput() - r.delivered as f64 / 1500.0).abs() < 1e-15);
    }

    #[test]
    fn zero_deliveries_report_no_mean_delay() {
        // delivered == 0 ⟺ mean_delay is None, and throughput always
        // divides by the run's own horizon.
        let p = problem(20, 9);
        for slots in [1u64, 2, 3] {
            let r = simulate_queueing(&p, &GreedyRate, &cfg(0.9, slots));
            assert_eq!(r.slots, slots);
            assert_eq!(r.mean_delay.is_none(), r.delivered == 0);
            assert!((r.throughput() - r.delivered as f64 / slots as f64).abs() < 1e-15);
        }
        // And a guaranteed-empty case: deserialize-style construction.
        let empty = QueueResult {
            arrived: 0,
            delivered: 0,
            mean_delay: None,
            mean_backlog: 0.0,
            max_backlog: 0,
            final_backlog: 0,
            slots: 0,
        };
        assert_eq!(empty.throughput(), 0.0);
    }

    #[test]
    fn queue_result_deserializes_old_manifests() {
        // Pre-`slots` manifests carried a bare number for mean_delay
        // and no slots field; both must still load.
        let old = r#"{
            "arrived": 10, "delivered": 8, "mean_delay": 2.5,
            "mean_backlog": 1.0, "max_backlog": 3, "final_backlog": 2
        }"#;
        let r: QueueResult = serde_json::from_str(old).unwrap();
        assert_eq!(r.mean_delay, Some(2.5));
        assert_eq!(r.slots, 0);
        assert_eq!(r.throughput(), 0.0);
    }

    #[test]
    fn overload_grows_the_backlog() {
        // 1 arrival/slot/link ≫ service capacity: backlog ≈ linear in t.
        let p = problem(100, 3);
        let r = simulate_queueing(&p, &Rle::new(), &cfg(1.0, 300));
        assert!(
            r.final_backlog > r.arrived / 2,
            "overload should leave most packets queued ({} of {})",
            r.final_backlog,
            r.arrived
        );
        assert!(r.max_backlog >= r.final_backlog / 2);
    }

    #[test]
    fn greedy_sustains_more_load_than_rle() {
        let p = problem(100, 4);
        let c = cfg(0.08, 600);
        let greedy = simulate_queueing(&p, &GreedyRate, &c);
        let rle = simulate_queueing(&p, &Rle::new(), &c);
        assert!(
            greedy.mean_backlog < rle.mean_backlog,
            "greedy backlog {} vs RLE {}",
            greedy.mean_backlog,
            rle.mean_backlog
        );
    }

    #[test]
    fn unchanged_alive_set_reuses_the_restriction() {
        // Deep overload: every link stays backlogged, so after the
        // first busy slot the alive set never changes and every later
        // slot must reuse the cached descendant instead of re-slicing.
        let reuse = fading_obs::counter("sim.queueing.restrict_reuse");
        let before = reuse.value();
        let p = problem(40, 12);
        let r =
            simulate_queueing_with_policy(&p, &GreedyRate, &cfg(1.0, 50), ServicePolicy::MaxWeight);
        assert_eq!(r.arrived, r.delivered + r.final_backlog);
        assert!(
            reuse.value() - before >= 40,
            "expected ≥40 reused slots, got {}",
            reuse.value() - before
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem(60, 5);
        let a = simulate_queueing(&p, &GreedyRate, &cfg(0.02, 200));
        let b = simulate_queueing(&p, &GreedyRate, &cfg(0.02, 200));
        assert_eq!(a, b);
    }

    #[test]
    fn maxweight_conserves_packets_too() {
        let p = problem(80, 7);
        let r = simulate_queueing_with_policy(
            &p,
            &GreedyRate,
            &cfg(0.06, 400),
            ServicePolicy::MaxWeight,
        );
        assert_eq!(r.arrived, r.delivered + r.final_backlog);
    }

    #[test]
    fn maxweight_shrinks_the_worst_queue() {
        // Under moderate overload, backpressure keeps the maximum
        // backlog smaller than plain rates (it chases long queues).
        let p = problem(100, 8);
        let c = cfg(0.12, 800);
        let plain = simulate_queueing_with_policy(&p, &GreedyRate, &c, ServicePolicy::PlainRates);
        let mw = simulate_queueing_with_policy(&p, &GreedyRate, &c, ServicePolicy::MaxWeight);
        // Same arrivals either way (same seed stream).
        assert_eq!(plain.arrived, mw.arrived);
        assert!(
            mw.delivered as f64 >= 0.8 * plain.delivered as f64,
            "backpressure should not collapse throughput ({} vs {})",
            mw.delivered,
            plain.delivered
        );
    }

    #[test]
    #[should_panic(expected = "arrival probability")]
    fn rejects_bad_arrival_prob() {
        let p = problem(5, 6);
        simulate_queueing(
            &p,
            &GreedyRate,
            &QueueConfig {
                arrival_prob: 0.0,
                slots: 10,
                seed: 0,
            },
        );
    }
}
