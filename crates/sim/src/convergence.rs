//! Monte-Carlo convergence diagnostics.
//!
//! EXPERIMENTS.md quotes means with 95% CIs; this module answers the
//! prior question — *how many trials are enough?* — by tracking the
//! running mean/CI as trials accumulate and finding the trial count at
//! which the CI half-width first drops below a target.

use crate::slot::simulate_slot;
use fading_core::{Problem, Schedule};
use fading_math::{ci95_half_width, seeded_rng, split_seed, OnlineStats};
use serde::{Deserialize, Serialize};

/// One point of a convergence trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Trials accumulated so far.
    pub trials: u64,
    /// Running mean of failed transmissions per slot.
    pub failed_mean: f64,
    /// 95% CI half-width of that mean.
    pub failed_ci95: f64,
}

/// Runs trials sequentially, recording the running estimate at
/// `checkpoints` (must be increasing; the last entry is the total
/// trial count).
///
/// # Panics
/// Panics if `checkpoints` is empty or not strictly increasing.
pub fn convergence_trace(
    problem: &Problem,
    schedule: &Schedule,
    checkpoints: &[u64],
    base_seed: u64,
) -> Vec<TracePoint> {
    assert!(!checkpoints.is_empty(), "need at least one checkpoint");
    assert!(
        checkpoints.windows(2).all(|w| w[0] < w[1]),
        "checkpoints must be strictly increasing"
    );
    let total = *checkpoints.last().expect("non-empty");
    let mut stats = OnlineStats::new();
    let mut out = Vec::with_capacity(checkpoints.len());
    let mut next = 0usize;
    for t in 0..total {
        let mut rng = seeded_rng(split_seed(base_seed, t));
        stats.push(simulate_slot(problem, schedule, &mut rng).failed_count() as f64);
        if t + 1 == checkpoints[next] {
            out.push(TracePoint {
                trials: t + 1,
                failed_mean: stats.mean(),
                failed_ci95: ci95_half_width(&stats),
            });
            next += 1;
        }
    }
    out
}

/// The smallest trial count (among powers of two up to `max_trials`)
/// whose 95% CI half-width is at most `target_ci`, or `None` if even
/// `max_trials` does not reach it.
pub fn trials_for_ci(
    problem: &Problem,
    schedule: &Schedule,
    target_ci: f64,
    max_trials: u64,
    base_seed: u64,
) -> Option<u64> {
    assert!(target_ci > 0.0, "target CI must be positive");
    assert!(max_trials >= 2, "need at least two trials");
    let mut checkpoints = Vec::new();
    let mut t = 2u64;
    while t < max_trials {
        checkpoints.push(t);
        t *= 2;
    }
    checkpoints.push(max_trials);
    convergence_trace(problem, schedule, &checkpoints, base_seed)
        .into_iter()
        .find(|p| p.failed_ci95 <= target_ci)
        .map(|p| p.trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_core::algo::ApproxDiversity;
    use fading_core::Scheduler;
    use fading_net::{TopologyGenerator, UniformGenerator};

    fn setup() -> (Problem, Schedule) {
        let p = Problem::paper(UniformGenerator::paper(150).generate(3), 3.0);
        let s = ApproxDiversity::new().schedule(&p);
        (p, s)
    }

    #[test]
    fn trace_matches_checkpoints() {
        let (p, s) = setup();
        let trace = convergence_trace(&p, &s, &[10, 50, 200], 7);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].trials, 10);
        assert_eq!(trace[2].trials, 200);
    }

    #[test]
    fn ci_shrinks_with_trials() {
        let (p, s) = setup();
        let trace = convergence_trace(&p, &s, &[50, 800], 11);
        assert!(
            trace[1].failed_ci95 < trace[0].failed_ci95,
            "{} vs {}",
            trace[1].failed_ci95,
            trace[0].failed_ci95
        );
        // 16× the trials ≈ 4× tighter CI (√n scaling), loosely checked.
        assert!(trace[1].failed_ci95 < 0.5 * trace[0].failed_ci95);
    }

    #[test]
    fn running_mean_is_consistent_with_full_run() {
        let (p, s) = setup();
        let trace = convergence_trace(&p, &s, &[500], 13);
        let full = crate::monte_carlo::simulate_many(&p, &s, 500, 13);
        assert!((trace[0].failed_mean - full.failed.mean).abs() < 1e-12);
    }

    #[test]
    fn trials_for_ci_finds_a_sufficient_count() {
        let (p, s) = setup();
        let needed = trials_for_ci(&p, &s, 0.2, 4096, 17).expect("should converge");
        assert!(needed <= 4096);
        // And the answer is honest: re-measure at that count.
        let trace = convergence_trace(&p, &s, &[needed], 17);
        assert!(trace[0].failed_ci95 <= 0.2 + 1e-12);
    }

    #[test]
    fn unreachable_target_returns_none() {
        let (p, s) = setup();
        assert_eq!(trials_for_ci(&p, &s, 1e-9, 64, 19), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_checkpoints() {
        let (p, s) = setup();
        convergence_trace(&p, &s, &[10, 10], 0);
    }
}
