//! Experiment configuration (Section V of the paper).

use fading_core::BackendChoice;
use fading_net::{RateModel, UniformGenerator};
use serde::{Deserialize, Serialize};

/// Configuration for the Fig. 5 / Fig. 6 sweeps.
///
/// The paper fixes: 500×500 field, link lengths U\[5,20\], ε = 0.01,
/// `γ_th = 1`, unit rates. The sweep grids (which `N` values, which `α`
/// values, how many instances and trials per point) are not printed in
/// the paper; the defaults here are our documented choices
/// (EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExperimentConfig {
    /// Field side length.
    pub side: f64,
    /// Shortest link length.
    pub len_lo: f64,
    /// Longest link length.
    pub len_hi: f64,
    /// Acceptable error probability ε.
    pub epsilon: f64,
    /// Decoding threshold γ_th.
    pub gamma_th: f64,
    /// Values of `N` swept in Fig. 5(a)/6(a).
    pub n_values: Vec<usize>,
    /// Values of `α` swept in Fig. 5(b)/6(b).
    pub alpha_values: Vec<f64>,
    /// `N` held fixed during the α sweep.
    pub default_n: usize,
    /// `α` held fixed during the N sweep.
    pub default_alpha: f64,
    /// Independent topology instances averaged per sweep point.
    pub instances: usize,
    /// Monte-Carlo channel realizations per instance.
    pub trials: u64,
    /// Base seed; instance `k` of a sweep point uses a derived stream.
    pub seed: u64,
    /// Interference backend used when building each instance's
    /// [`fading_core::Problem`]. Defaults to dense (the paper
    /// configuration); manifests written before this field existed
    /// deserialize unchanged (see the manual [`Deserialize`] impl).
    pub interference: BackendChoice,
}

// The vendored serde derive requires every named field to be present;
// this manual impl instead treats `interference` as optional so config
// files written before the field existed still load, defaulting to the
// dense (paper) backend.
impl Deserialize for ExperimentConfig {
    fn deserialize_node(node: &serde::Node) -> Result<Self, serde::DeError> {
        fn field<T: Deserialize>(node: &serde::Node, name: &str) -> Result<T, serde::DeError> {
            Deserialize::deserialize_node(
                node.get(name)
                    .ok_or_else(|| serde::DeError(format!("missing field `{name}`")))?,
            )
        }
        if !matches!(node, serde::Node::Map(_)) {
            return Err(serde::DeError(
                "invalid type: expected a map for struct ExperimentConfig".to_string(),
            ));
        }
        Ok(Self {
            side: field(node, "side")?,
            len_lo: field(node, "len_lo")?,
            len_hi: field(node, "len_hi")?,
            epsilon: field(node, "epsilon")?,
            gamma_th: field(node, "gamma_th")?,
            n_values: field(node, "n_values")?,
            alpha_values: field(node, "alpha_values")?,
            default_n: field(node, "default_n")?,
            default_alpha: field(node, "default_alpha")?,
            instances: field(node, "instances")?,
            trials: field(node, "trials")?,
            seed: field(node, "seed")?,
            interference: match node.get("interference") {
                None => BackendChoice::Dense,
                Some(n) => Deserialize::deserialize_node(n)?,
            },
        })
    }
}

impl ExperimentConfig {
    /// The configuration used by EXPERIMENTS.md.
    pub fn paper() -> Self {
        Self {
            side: 500.0,
            len_lo: 5.0,
            len_hi: 20.0,
            epsilon: 0.01,
            gamma_th: 1.0,
            n_values: vec![100, 200, 300, 400, 500],
            alpha_values: vec![2.5, 3.0, 3.5, 4.0, 4.5],
            default_n: 300,
            default_alpha: 3.0,
            instances: 10,
            trials: 1000,
            seed: 20170714, // ICPP 2017 venue date
            interference: BackendChoice::Dense,
        }
    }

    /// A reduced configuration for fast smoke tests and CI.
    pub fn quick() -> Self {
        Self {
            n_values: vec![100, 300],
            alpha_values: vec![2.5, 4.0],
            instances: 2,
            trials: 100,
            ..Self::paper()
        }
    }

    /// The instance generator for a sweep point with `n` links.
    pub fn generator(&self, n: usize) -> UniformGenerator {
        UniformGenerator {
            side: self.side,
            n,
            len_lo: self.len_lo,
            len_hi: self.len_hi,
            rates: RateModel::Fixed(1.0),
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_v() {
        let c = ExperimentConfig::paper();
        assert_eq!(c.side, 500.0);
        assert_eq!((c.len_lo, c.len_hi), (5.0, 20.0));
        assert_eq!(c.epsilon, 0.01);
        assert_eq!(c.gamma_th, 1.0);
        assert!(c.n_values.contains(&c.default_n));
        assert!(c.alpha_values.contains(&c.default_alpha));
    }

    #[test]
    fn quick_is_smaller_than_paper() {
        let q = ExperimentConfig::quick();
        let p = ExperimentConfig::paper();
        assert!(q.trials < p.trials);
        assert!(q.instances < p.instances);
        assert!(q.n_values.len() < p.n_values.len());
    }

    #[test]
    fn generator_uses_unit_rates() {
        use fading_net::TopologyGenerator;
        let c = ExperimentConfig::paper();
        let ls = c.generator(50).generate(1);
        assert_eq!(ls.len(), 50);
        assert!(ls.has_uniform_rates());
    }

    #[test]
    fn serde_roundtrip() {
        let mut c = ExperimentConfig::paper();
        c.interference = BackendChoice::Auto;
        let json = serde_json::to_string(&c).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn configs_without_a_backend_field_default_to_dense() {
        // A manifest written before the `interference` field existed.
        let json = serde_json::to_string(&ExperimentConfig::paper()).unwrap();
        let legacy = json.replace(",\"interference\":\"Dense\"", "");
        assert_ne!(legacy, json, "expected to strip the interference field");
        let back: ExperimentConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, ExperimentConfig::paper());
    }
}
