//! Reusable scheduling workspaces for batched sweep execution.
//!
//! A sweep point schedules hundreds of independent instances from
//! rayon workers; allocating a fresh [`SchedCtx`] per instance throws
//! away exactly the buffers the next instance is about to need. A
//! [`BatchRunner`] keeps a pool of warm workspaces: each call checks
//! one out (or creates the pool's first few while workers ramp up),
//! schedules through it, and returns it, so in steady state the pool
//! holds one warm ctx per concurrently-scheduling worker and the hot
//! path performs no heap allocation.
//!
//! The pool hands contexts to whichever worker asks next — safe
//! because a [`SchedCtx`] carries *capacity only*, never semantic
//! state (see `docs/engine.md` for the contract).

use fading_core::{Problem, SchedCtx, Schedule, Scheduler};
use std::sync::Mutex;

/// A shared pool of warm [`SchedCtx`] workspaces.
///
/// ```
/// use fading_core::algo::Rle;
/// use fading_core::{Problem, Scheduler};
/// use fading_net::{TopologyGenerator, UniformGenerator};
/// use fading_sim::BatchRunner;
///
/// let batch = BatchRunner::new();
/// let rle = Rle::new();
/// for seed in 0..4 {
///     let p = Problem::paper(UniformGenerator::paper(60).generate(seed), 3.0);
///     let s = batch.schedule(&rle, &p);
///     assert_eq!(s, rle.schedule(&p), "warm ctx must not change results");
/// }
/// assert_eq!(batch.pool_size(), 1, "sequential use needs one workspace");
/// ```
#[derive(Default)]
pub struct BatchRunner {
    pool: Mutex<Vec<SchedCtx>>,
}

impl BatchRunner {
    /// An empty pool; workspaces are created on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks a workspace out of the pool (creating one when every
    /// warm ctx is in use by another worker).
    pub fn checkout(&self) -> SchedCtx {
        self.pool
            .lock()
            .expect("ctx pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a workspace to the pool for the next checkout.
    pub fn checkin(&self, ctx: SchedCtx) {
        self.pool.lock().expect("ctx pool poisoned").push(ctx);
    }

    /// Schedules `problem` through a pooled workspace.
    ///
    /// Bit-identical to `scheduler.schedule(problem)` — the ctx
    /// contract guarantees reuse never changes decisions — but without
    /// the per-call arena construction once the pool is warm.
    pub fn schedule(&self, scheduler: &dyn Scheduler, problem: &Problem) -> Schedule {
        let mut ctx = self.checkout();
        let schedule = scheduler.schedule_in(problem, &mut ctx);
        self.checkin(ctx);
        schedule
    }

    /// Number of workspaces currently resting in the pool (in-flight
    /// checkouts are not counted). Peaks at the number of workers that
    /// ever scheduled concurrently.
    pub fn pool_size(&self) -> usize {
        self.pool.lock().expect("ctx pool poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_core::algo::{GreedyRate, Ldp, Rle};
    use fading_net::{TopologyGenerator, UniformGenerator};
    use rayon::prelude::*;

    fn problem(n: usize, seed: u64) -> Problem {
        Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0)
    }

    #[test]
    fn pooled_schedules_match_fresh_schedules() {
        let batch = BatchRunner::new();
        let schedulers: [&dyn Scheduler; 3] = [&Rle::new(), &Ldp::new(), &GreedyRate];
        // Interleave sizes and schedulers so contexts are reused dirty.
        for round in 0..3u64 {
            for (k, s) in schedulers.iter().enumerate() {
                let p = problem(40 + 30 * k, round);
                assert_eq!(batch.schedule(*s, &p), s.schedule(&p), "{}", s.name());
            }
        }
    }

    #[test]
    fn sequential_reuse_keeps_one_workspace() {
        let batch = BatchRunner::new();
        let rle = Rle::new();
        for seed in 0..5 {
            batch.schedule(&rle, &problem(50, seed));
        }
        assert_eq!(batch.pool_size(), 1);
    }

    #[test]
    fn parallel_use_is_deterministic_and_bounded() {
        let batch = BatchRunner::new();
        let rle = Rle::new();
        let expected: Vec<_> = (0..16).map(|s| rle.schedule(&problem(60, s))).collect();
        let got: Vec<_> = (0..16u64)
            .into_par_iter()
            .map(|s| batch.schedule(&rle, &problem(60, s)))
            .collect();
        assert_eq!(got, expected);
        let workers = std::thread::available_parallelism().map_or(1, |t| t.get());
        let pooled = batch.pool_size();
        assert!(
            (1..=workers.max(16)).contains(&pooled),
            "pool holds {pooled} workspaces for {workers} workers"
        );
    }
}
