//! One time-slot channel realization.
//!
//! For every scheduled link `j`, draw the desired-signal power
//! `Z_{j,j} ~ Exp(P·d_jj^{−α})` and each interferer's power
//! `Z_{i,j} ~ Exp(P·d_ij^{−α})` independently (the Rayleigh model,
//! Eq. (5)), then test the realized SINR against `γ_th` (Eq. (7)–(8)).
//!
//! Every draw is scaled by the problem's per-link power scale. The
//! queueing and multi-slot loops hand this function *residual*
//! sub-problems built by `Problem::restrict`, which slices the parent's
//! power scales along with its interference state — so
//! `sample_gain_scaled` sees the true transmit powers here even though
//! the sub-instance was renumbered (see `docs/residual.md`).

use fading_core::{Problem, Schedule};
use fading_net::LinkId;
use rand::Rng;

/// Outcome of one slot realization.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotOutcome {
    /// Links whose realized SINR cleared `γ_th`.
    pub successes: Vec<LinkId>,
    /// Links that failed.
    pub failures: Vec<LinkId>,
    /// Total rate of successful links (realized throughput).
    pub delivered_rate: f64,
}

impl SlotOutcome {
    /// Number of failed transmissions in this slot.
    pub fn failed_count(&self) -> usize {
        self.failures.len()
    }
}

/// Simulates one slot of `schedule` on `problem` using `rng`.
pub fn simulate_slot<R: Rng + ?Sized>(
    problem: &Problem,
    schedule: &Schedule,
    rng: &mut R,
) -> SlotOutcome {
    let channel = problem.channel();
    let links = problem.links();
    let mut successes = Vec::new();
    let mut failures = Vec::new();
    let mut delivered_rate = 0.0;
    for j in schedule.iter() {
        let signal = channel.sample_gain_scaled(rng, links.length(j), problem.power_scale(j));
        let interference = schedule.iter().filter(|&i| i != j).map(|i| {
            channel.sample_gain_scaled(
                rng,
                links.sender_receiver_distance(i, j),
                problem.power_scale(i),
            )
        });
        let outcome = fading_channel::sinr_of(problem.params(), signal, interference);
        if outcome.success {
            successes.push(j);
            delivered_rate += problem.rate(j);
        } else {
            failures.push(j);
        }
    }
    // |S| draws per scheduled link (its signal plus |S|−1 interferers),
    // batched into one increment per slot so the Monte-Carlo hot loop
    // never touches the registry per draw.
    let s = schedule.len() as u64;
    fading_obs::counter!("channel.rayleigh.draws").add(s * s);
    SlotOutcome {
        successes,
        failures,
        delivered_rate,
    }
}

/// One realization's SINR per scheduled link (schedule order). Used by
/// the SINR-distribution experiment; kept separate from
/// [`simulate_slot`] so the Monte-Carlo hot path avoids the extra
/// allocation.
pub fn realized_sinrs<R: Rng + ?Sized>(
    problem: &Problem,
    schedule: &Schedule,
    rng: &mut R,
) -> Vec<(LinkId, f64)> {
    let channel = problem.channel();
    let links = problem.links();
    schedule
        .iter()
        .map(|j| {
            let signal = channel.sample_gain_scaled(rng, links.length(j), problem.power_scale(j));
            let interference = schedule.iter().filter(|&i| i != j).map(|i| {
                channel.sample_gain_scaled(
                    rng,
                    links.sender_receiver_distance(i, j),
                    problem.power_scale(i),
                )
            });
            (
                j,
                fading_channel::sinr_of(problem.params(), signal, interference).sinr,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_math::seeded_rng;
    use fading_net::{TopologyGenerator, UniformGenerator};

    fn problem(n: usize, seed: u64) -> Problem {
        Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0)
    }

    #[test]
    fn empty_schedule_trivial_outcome() {
        let p = problem(10, 1);
        let mut rng = seeded_rng(0);
        let out = simulate_slot(&p, &Schedule::empty(), &mut rng);
        assert!(out.successes.is_empty());
        assert!(out.failures.is_empty());
        assert_eq!(out.delivered_rate, 0.0);
    }

    #[test]
    fn singleton_always_succeeds_without_noise() {
        // No interferers and N₀ = 0 ⇒ infinite SINR in every realization.
        let p = problem(10, 2);
        let mut rng = seeded_rng(1);
        let s = Schedule::from_ids([LinkId(3)]);
        for _ in 0..100 {
            let out = simulate_slot(&p, &s, &mut rng);
            assert_eq!(out.successes, vec![LinkId(3)]);
            assert_eq!(out.delivered_rate, 1.0);
        }
    }

    #[test]
    fn partition_is_exact() {
        let p = problem(50, 3);
        let s = Schedule::from_ids(p.links().ids());
        let mut rng = seeded_rng(2);
        let out = simulate_slot(&p, &s, &mut rng);
        assert_eq!(out.successes.len() + out.failures.len(), s.len());
        // Delivered rate equals the number of successes (unit rates).
        assert_eq!(out.delivered_rate, out.successes.len() as f64);
    }

    #[test]
    fn dense_all_on_schedule_sees_failures() {
        // Activating all 200 links in a 500×500 field is hopeless; some
        // failures are certain in any realization.
        let p = problem(200, 4);
        let s = Schedule::from_ids(p.links().ids());
        let mut rng = seeded_rng(3);
        let out = simulate_slot(&p, &s, &mut rng);
        assert!(out.failed_count() > 0);
    }

    #[test]
    fn deterministic_given_rng_state() {
        let p = problem(30, 5);
        let s = Schedule::from_ids(p.links().ids());
        let a = simulate_slot(&p, &s, &mut seeded_rng(7));
        let b = simulate_slot(&p, &s, &mut seeded_rng(7));
        assert_eq!(a, b);
    }
}
