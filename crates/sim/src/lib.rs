//! Monte-Carlo evaluation harness for Fading-R-LS schedulers.
//!
//! The paper evaluates schedules by simulation (Section V): draw
//! Rayleigh channel realizations, count how many scheduled links fail
//! to clear the decoding threshold, and measure delivered throughput.
//! This crate provides:
//!
//! * [`batch`] — pooled scheduling workspaces so sweep workers reuse
//!   warm scratch arenas instead of allocating per instance;
//! * [`slot`] — one channel realization of a schedule;
//! * [`monte_carlo`] — many independent realizations in parallel
//!   (rayon), reduced into exact mergeable statistics;
//! * [`config`] — the paper's experiment configuration (500×500 field,
//!   link lengths U\[5,20\], ε = 0.01, γ_th = 1, λ = 1) plus sweep grids;
//! * [`runner`] — the Fig. 5/Fig. 6 sweeps over `N` and `α` for any set
//!   of schedulers;
//! * [`results`] — serializable result rows, text tables, and CSV.

pub mod batch;
pub mod churn;
pub mod config;
pub mod convergence;
pub mod monte_carlo;
pub mod queueing;
pub mod results;
pub mod robustness;
pub mod runner;
pub mod slot;

pub use batch::BatchRunner;
pub use churn::{
    stability_frontier, ChurnConfig, ChurnEngine, ChurnResult, ChurnSlot, ChurnTelemetry,
    TelemetryConfig,
};
pub use config::ExperimentConfig;
pub use convergence::{convergence_trace, trials_for_ci, TracePoint};
pub use monte_carlo::{simulate_many, MonteCarloStats};
pub use queueing::{
    simulate_queueing, simulate_queueing_with_policy, QueueConfig, QueueResult, ServicePolicy,
};
pub use results::{ResultRow, ResultTable};
pub use robustness::{
    burstiness, drift_reliability, simulate_many_nakagami, simulate_many_shadowed, sinr_histogram,
    BurstStats,
};
pub use runner::{sweep, sweep_alpha, sweep_n, SweepAxis};
pub use slot::{realized_sinrs, simulate_slot, SlotOutcome};
