//! Release-mode queueing smoke: the restriction substrate at scale.
//!
//! Ignored by default — the dense matrix at `n = 2000` alone is 32 MB
//! and 200 slots of the old rebuild-per-slot loop took minutes in a
//! debug build. CI runs it explicitly:
//!
//! ```text
//! cargo test --release -p fading-sim --test queueing_smoke -- --ignored
//! ```
//!
//! Before `Problem::restrict`, every backlogged slot paid an `O(n²)`
//! geometry recompute; the wall guard here is the regression tripwire —
//! restrict-based slots at this scale finish comfortably inside it,
//! rebuild-based slots do not.

use fading_channel::ChannelParams;
use fading_core::algo::GreedyRate;
use fading_core::{BackendChoice, Problem};
use fading_net::{RateModel, TopologyGenerator, UniformGenerator};
use fading_sim::queueing::{simulate_queueing_with_policy, QueueConfig, ServicePolicy};
use std::time::{Duration, Instant};

#[test]
#[ignore = "release-mode scale smoke (CI runs it explicitly with --ignored)"]
fn queueing_two_thousand_links_two_hundred_slots_within_wall_guard() {
    let n = 2000usize;
    // Paper density (300 links per 500×500 field) scaled to n.
    let gen = UniformGenerator {
        side: 500.0 * (n as f64 / 300.0).sqrt(),
        n,
        len_lo: 5.0,
        len_hi: 20.0,
        rates: RateModel::Fixed(1.0),
    };
    let links = gen.generate(20170715);
    let problem = Problem::builder(links, ChannelParams::paper_defaults())
        .backend(BackendChoice::Dense)
        .build();
    let cfg = QueueConfig {
        arrival_prob: 0.2,
        slots: 200,
        seed: 3,
    };

    let started = Instant::now();
    let result =
        simulate_queueing_with_policy(&problem, &GreedyRate, &cfg, ServicePolicy::MaxWeight);
    let elapsed = started.elapsed();

    assert_eq!(result.slots, cfg.slots);
    assert!(result.arrived > 0, "deterministic arrivals must occur");
    assert!(
        result.delivered > 0,
        "a 2000-link instance must deliver something in 200 slots"
    );
    assert_eq!(
        result.arrived,
        result.delivered + result.final_backlog,
        "packet conservation"
    );
    // Wall guard. The restrict-based loop runs this in seconds in a
    // release build; the old rebuild-per-slot loop pays ~200 dense
    // matrix builds (~30 ms each at n = 2000) on top of scheduling and
    // blows well past any comfortable margin on slow CI runners.
    let guard = Duration::from_secs(120);
    assert!(
        elapsed < guard,
        "200 queueing slots at n = {n} took {elapsed:?}, over the {guard:?} wall guard"
    );
}
