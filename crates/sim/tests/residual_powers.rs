//! Regression: residual sub-problems must keep the parent's per-link
//! power scales (and backend). Before `Problem::restrict`, the
//! multi-slot loop and the queueing simulator rebuilt residual
//! instances with `Problem::new`, silently reverting a powered instance
//! to uniform power — slots that are infeasible under the true powers
//! looked feasible, and vice versa.
//!
//! The instance here is engineered so the bug is *observable*: two
//! far-apart links that coexist under uniform power but conflict once
//! link 0's sender transmits at 1000×. The old code scheduled them
//! together; the fixed code must keep them in separate slots.

use fading_channel::ChannelParams;
use fading_core::algo::GreedyRate;
use fading_core::feasibility::is_feasible;
use fading_core::{multislot, Problem, Schedule};
use fading_geom::{Point2, Rect};
use fading_net::{Link, LinkId, LinkSet};
use fading_sim::queueing::{simulate_queueing_with_policy, QueueConfig, ServicePolicy};

/// Two parallel length-5 links, 50 apart. Cross factors under uniform
/// power are `ln(1 + (5/50.2…)³) ≈ 1e-3 < γ_ε`; with sender 0 at 1000×
/// the 0→1 factor is `ln(1 + 1000·(5/50.2…)³) ≈ 0.69 ≫ γ_ε`.
fn links() -> LinkSet {
    LinkSet::new(
        Rect::square(100.0),
        vec![
            Link::new(LinkId(0), Point2::new(0.0, 0.0), Point2::new(5.0, 0.0), 1.0),
            Link::new(
                LinkId(1),
                Point2::new(0.0, 50.0),
                Point2::new(5.0, 50.0),
                1.0,
            ),
        ],
    )
}

const SCALES: [f64; 2] = [1000.0, 1.0];
const EPSILON: f64 = 0.01;

fn uniform() -> Problem {
    Problem::new(links(), ChannelParams::paper_defaults(), EPSILON)
}

fn powered() -> Problem {
    Problem::builder(links(), ChannelParams::paper_defaults())
        .epsilon(EPSILON)
        .power_scales(SCALES.to_vec())
        .build()
}

/// The preconditions the instance is engineered for — if these fail the
/// other tests in this file test nothing.
#[test]
fn instance_discriminates_uniform_from_powered() {
    let both = Schedule::from_ids([LinkId(0), LinkId(1)]);
    assert!(
        is_feasible(&uniform(), &both),
        "links must coexist under uniform power"
    );
    assert!(
        !is_feasible(&powered(), &both),
        "links must conflict under the true powers"
    );
}

/// Multi-slot scheduling on a powered instance: every slot must be
/// feasible under the *parent's* powers. The old residual rebuild
/// dropped the scales and packed both links into one slot.
#[test]
fn multislot_respects_parent_power_scales() {
    let p = powered();
    let ms = multislot::schedule_all(&p, &GreedyRate);
    for slot in ms.slots() {
        assert!(
            is_feasible(&p, slot),
            "slot {slot:?} infeasible under the parent's powers"
        );
    }
    assert_eq!(
        ms.num_slots(),
        2,
        "conflicting powered links need separate slots"
    );
    assert_eq!(ms.total_links(), 2);
}

/// Queueing on the same instance, both service policies: with the true
/// powers at most one of the two links can be served per slot, and a
/// noise-free singleton always succeeds, so deliveries are exactly one
/// per slot. The old residual rebuild served both every slot (≈ 2 per
/// slot) because the uniform-power sub-instance saw no conflict.
#[test]
fn queueing_respects_parent_power_scales() {
    let cfg = QueueConfig {
        arrival_prob: 1.0,
        slots: 120,
        seed: 9,
    };
    for policy in [ServicePolicy::PlainRates, ServicePolicy::MaxWeight] {
        let r = simulate_queueing_with_policy(&powered(), &GreedyRate, &cfg, policy);
        assert_eq!(r.arrived, 2 * cfg.slots, "deterministic arrivals");
        assert_eq!(
            r.delivered, cfg.slots,
            "{policy:?}: exactly one conflicting link can deliver per slot"
        );
        assert_eq!(r.slots, cfg.slots);
        assert!((r.throughput() - 1.0).abs() < 1e-12);
    }
}

/// The uniform-power twin delivers both packets every slot — pinning
/// that the powered behavior above comes from the power scales, not
/// from some other property of the geometry.
#[test]
fn uniform_twin_serves_both_links_every_slot() {
    let cfg = QueueConfig {
        arrival_prob: 1.0,
        slots: 120,
        seed: 9,
    };
    let r = simulate_queueing_with_policy(&uniform(), &GreedyRate, &cfg, ServicePolicy::PlainRates);
    assert_eq!(r.delivered, 2 * cfg.slots);
    assert_eq!(r.final_backlog, 0);
}
