//! The slot-series contract, asserted literally: once the ring and
//! scratch buffer are warm, `SlotSeries::record` performs **zero heap
//! allocations** — including when streaming JSONL through the
//! `BufWriter` — so telemetry never perturbs the hot loop it measures.
//!
//! A counting `#[global_allocator]` wraps the system allocator; this
//! file is its own test binary so no other test's allocations pollute
//! the counter.

use fading_obs::{SeriesConfig, SlotRecord, SlotSeries};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn record_for(slot: u64) -> SlotRecord {
    SlotRecord {
        slot,
        population: 2_000 + slot % 7,
        arrivals: slot % 3,
        departures: slot % 2,
        backlogged: 400,
        scheduled: 120,
        eliminated: 280,
        packets: 390,
        delivered: 118,
        abandoned: 1,
        backlog: 10_000 + slot,
        mutate_ns: 11_111,
        commit_ns: 9_999,
        envelope_ns: 22_222,
        restrict_ns: 33_333,
        schedule_ns: 44_444,
        service_ns: 55_555,
        slot_ns: 170_000,
    }
}

#[test]
fn steady_state_record_is_allocation_free() {
    let dir = std::env::temp_dir().join(format!("obs_series_alloc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("series.jsonl");
    let mut series = SlotSeries::to_path(
        SeriesConfig {
            capacity: 64,
            cadence: 1,
            timings: true,
        },
        &path,
    )
    .unwrap();

    // Warm up: fill the ring past capacity and let the scratch string
    // and BufWriter reach their steady sizes.
    for t in 0..256 {
        series.record(&record_for(t));
    }

    // Measure over a few independent windows and take the best: a real
    // steady-state allocation in `record` shows up in *every* window,
    // while a one-off ambient allocation elsewhere in the process (the
    // test harness runs on its own thread and shares this global
    // counter) cannot fail all of them.
    let mut slot = 256;
    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = allocations();
        for t in slot..slot + 3_840 {
            series.record(&record_for(t));
        }
        slot += 3_840;
        best = best.min(allocations() - before);
        if best == 0 {
            break;
        }
    }
    assert_eq!(
        best, 0,
        "steady-state SlotSeries::record allocated {best} times per window"
    );

    series.flush().unwrap();
    assert_eq!(series.recorded(), slot);
    drop(series);
    let lines = std::fs::read_to_string(&path).unwrap().lines().count();
    assert_eq!(lines, slot as usize);
    std::fs::remove_dir_all(&dir).ok();
}
