//! Sharded-metrics correctness under real thread concurrency: N
//! threads hammer the *same* counter and histogram handles, and the
//! merged snapshot must equal the per-thread ground truth exactly —
//! no lost updates across `SHARDS`, no double counting at merge.
//!
//! The in-crate unit tests cover `rayon::join`; this binary spawns
//! more OS threads than there are shards (`SHARDS = 16`), so several
//! threads share a shard and the relaxed `fetch_add` path is exercised
//! under genuine cross-thread contention on one cache line.

use fading_obs::metrics::SHARDS;
use fading_obs::{counter, histogram};

/// More threads than shards, so shard reuse is guaranteed.
const THREADS: usize = SHARDS + 8;
const OPS_PER_THREAD: u64 = 100_000;

#[test]
fn counter_merge_is_exact_across_many_threads() {
    let c = counter("obs.conc.counter");
    let before = c.value();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let c = c.clone();
            s.spawn(move || {
                // Thread t adds t+1 per op, so lost updates from any
                // single thread shift the total detectably.
                for _ in 0..OPS_PER_THREAD {
                    c.add(t as u64 + 1);
                }
            });
        }
    });
    let expected: u64 = (1..=THREADS as u64).sum::<u64>() * OPS_PER_THREAD;
    assert_eq!(c.value() - before, expected);
}

#[test]
fn histogram_merge_is_exact_across_many_threads() {
    // Bounds chosen so each thread's values land in a known bucket:
    // thread t records the value t+0.5, which falls in bucket t
    // (le-semantics against bounds 1..=THREADS).
    let bounds: Vec<f64> = (1..=THREADS).map(|b| b as f64).collect();
    let h = histogram("obs.conc.hist", &bounds);
    let before = h.snapshot();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = h.clone();
            s.spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    h.record(t as f64 + 0.5);
                }
            });
        }
    });
    let after = h.snapshot();
    // Per-bucket counts: exactly OPS_PER_THREAD new entries per bucket.
    for t in 0..THREADS {
        assert_eq!(
            after.counts[t] - before.counts[t],
            OPS_PER_THREAD,
            "bucket {t} lost updates"
        );
    }
    assert_eq!(after.overflow, before.overflow);
    assert_eq!(after.count - before.count, THREADS as u64 * OPS_PER_THREAD);
    // The f64 sum accumulates via CAS; with exactly representable
    // addends (x.5 values summed in any order) it must be exact too.
    let expected_sum: f64 = (0..THREADS)
        .map(|t| (t as f64 + 0.5) * OPS_PER_THREAD as f64)
        .sum();
    assert!(
        (after.sum - before.sum - expected_sum).abs() < 1e-6,
        "sum drifted: {} vs {expected_sum}",
        after.sum - before.sum
    );
}

#[test]
fn mixed_counter_and_histogram_traffic_stays_consistent() {
    let c = counter("obs.conc.mixed_counter");
    let h = histogram("obs.conc.mixed_hist", &[0.5, 1.5]);
    let c0 = c.value();
    let h0 = h.snapshot();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let (c, h) = (c.clone(), h.clone());
            s.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    c.incr();
                    h.record(if i % 2 == 0 { 0.0 } else { 1.0 });
                }
            });
        }
    });
    let total = THREADS as u64 * OPS_PER_THREAD;
    assert_eq!(c.value() - c0, total);
    let h1 = h.snapshot();
    assert_eq!(h1.count - h0.count, total);
    assert_eq!(h1.counts[0] - h0.counts[0], total / 2);
    assert_eq!(h1.counts[1] - h0.counts[1], total / 2);
}
