//! RAII wall-clock spans aggregated into a timing tree.
//!
//! [`Span::enter`] pushes a name onto a thread-local stack and starts
//! a timer; dropping the guard pops the stack and accumulates the
//! elapsed time under the dotted path of every open span on that
//! thread. [`span_snapshot`] turns the accumulated paths into a
//! hierarchical [`SpanNode`] tree.
//!
//! Spans opened on `rayon` worker threads start their own root (the
//! stack is per-thread), which is the honest reading: a worker's time
//! is not lexically inside the caller's frame.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// path -> (calls, total nanoseconds)
fn table() -> &'static Mutex<BTreeMap<String, (u64, u64)>> {
    static TABLE: OnceLock<Mutex<BTreeMap<String, (u64, u64)>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// An open timing span; created by [`Span::enter`] or the
/// [`crate::span!`] macro, recorded on drop.
pub struct Span {
    start: Instant,
    path: String,
}

impl Span {
    /// Opens a span named `name` nested under the spans currently open
    /// on this thread. Guards must be dropped in reverse open order
    /// (the natural RAII scoping); bind the result to a local.
    pub fn enter(name: &str) -> Self {
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            stack.push(name.to_string());
            stack.join(".")
        });
        Self {
            start: Instant::now(),
            path,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed_ns = self.start.elapsed().as_nanos() as u64;
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let mut totals = table().lock().unwrap();
        let entry = totals
            .entry(std::mem::take(&mut self.path))
            .or_insert((0, 0));
        entry.0 += 1;
        entry.1 += elapsed_ns;
    }
}

/// One node of the reported timing tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    /// Last path segment (span name).
    pub name: String,
    /// Number of completed spans at exactly this path. Zero for
    /// intermediate nodes that only exist as parents.
    pub calls: u64,
    /// Total wall time at exactly this path, in nanoseconds
    /// (children's time is included — the parent's clock was running).
    pub total_ns: u64,
    /// Child spans, sorted by name.
    pub children: Vec<SpanNode>,
}

fn insert(nodes: &mut Vec<SpanNode>, segments: &[&str], calls: u64, total_ns: u64) {
    let Some((&head, rest)) = segments.split_first() else {
        return;
    };
    let node = match nodes.iter().position(|n| n.name == head) {
        Some(i) => &mut nodes[i],
        None => {
            nodes.push(SpanNode {
                name: head.to_string(),
                calls: 0,
                total_ns: 0,
                children: Vec::new(),
            });
            nodes.last_mut().unwrap()
        }
    };
    if rest.is_empty() {
        node.calls += calls;
        node.total_ns += total_ns;
    } else {
        insert(&mut node.children, rest, calls, total_ns);
    }
}

/// The completed-span tree so far. Sibling order follows the sorted
/// dotted paths, so the output is deterministic.
pub fn span_snapshot() -> Vec<SpanNode> {
    let totals = table().lock().unwrap();
    let mut roots = Vec::new();
    for (path, &(calls, total_ns)) in totals.iter() {
        let segments: Vec<&str> = path.split('.').collect();
        insert(&mut roots, &segments, calls, total_ns);
    }
    roots
}

/// Discards all recorded span timings (open guards still record on
/// drop). Meant for tests and phase isolation.
pub fn reset_spans() {
    table().lock().unwrap().clear();
}

/// Looks up a node by dotted path in a snapshot (helper for tests and
/// acceptance checks).
pub fn find<'a>(nodes: &'a [SpanNode], path: &str) -> Option<&'a SpanNode> {
    let (head, rest) = match path.split_once('.') {
        Some((h, r)) => (h, Some(r)),
        None => (path, None),
    };
    let node = nodes.iter().find(|n| n.name == head)?;
    match rest {
        None => Some(node),
        Some(r) => find(&node.children, r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_build_a_tree() {
        {
            let _outer = Span::enter("obs_test_outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = Span::enter("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let _inner2 = Span::enter("inner2");
        }
        let snap = span_snapshot();
        let outer = find(&snap, "obs_test_outer").expect("outer recorded");
        assert_eq!(outer.calls, 1);
        let inner = find(&snap, "obs_test_outer.inner").expect("inner nested");
        assert_eq!(inner.calls, 1);
        assert!(inner.total_ns > 0);
        assert!(
            outer.total_ns >= inner.total_ns,
            "parent includes child time"
        );
        assert!(find(&snap, "obs_test_outer.inner2").is_some());
        assert!(find(&snap, "inner").is_none(), "inner is not a root");
    }

    #[test]
    fn dotted_names_create_levels() {
        {
            let _s = Span::enter("obs_test_ldp.partition");
        }
        let snap = span_snapshot();
        let leaf = find(&snap, "obs_test_ldp.partition").expect("leaf");
        assert_eq!(leaf.calls, 1);
        let parent = find(&snap, "obs_test_ldp").expect("intermediate");
        assert_eq!(parent.calls, 0, "purely structural node");
    }

    #[test]
    fn repeated_spans_accumulate_calls() {
        for _ in 0..5 {
            let _s = Span::enter("obs_test_repeat");
        }
        let snap = span_snapshot();
        assert!(find(&snap, "obs_test_repeat").unwrap().calls >= 5);
    }
}
