//! RAII wall-clock spans aggregated into a timing tree.
//!
//! [`Span::enter`] appends a name to a thread-local dotted path and
//! starts a timer; dropping the guard accumulates the elapsed time
//! under that path and truncates it back. [`span_snapshot`] turns the
//! accumulated paths into a hierarchical [`SpanNode`] tree.
//!
//! Spans opened on `rayon` worker threads start their own root (the
//! path is per-thread), which is the honest reading: a worker's time
//! is not lexically inside the caller's frame.
//!
//! # Allocation discipline
//!
//! Spans sit on the per-`schedule()` hot path of the zero-allocation
//! engine (`docs/engine.md`), so the warm path must not touch the heap:
//! the thread-local path is one reused `String` (names are appended in
//! place and truncated on drop), and the totals table is updated via
//! `get_mut` on the borrowed path. The only allocations are one-time:
//! growing the path string past its high-water mark and inserting a
//! path's first table entry.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

thread_local! {
    /// The dotted path of the spans currently open on this thread,
    /// e.g. `"sweep.scheduler.core.rle.schedule"`. Reused across
    /// spans so steady-state enter/drop never allocates.
    static PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// path -> (calls, total nanoseconds)
fn table() -> &'static Mutex<BTreeMap<String, (u64, u64)>> {
    static TABLE: OnceLock<Mutex<BTreeMap<String, (u64, u64)>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// An open timing span; created by [`Span::enter`] or the
/// [`crate::span!`] macro, recorded on drop.
pub struct Span {
    start: Instant,
    /// Path length before this span's segment was appended; drop
    /// truncates back to it.
    trunc: usize,
}

impl Span {
    /// Opens a span named `name` nested under the spans currently open
    /// on this thread. Guards must be dropped in reverse open order
    /// (the natural RAII scoping); bind the result to a local.
    pub fn enter(name: &str) -> Self {
        let trunc = PATH.with(|p| {
            let mut path = p.borrow_mut();
            let trunc = path.len();
            if !path.is_empty() {
                path.push('.');
            }
            path.push_str(name);
            trunc
        });
        Self {
            start: Instant::now(),
            trunc,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed_ns = self.start.elapsed().as_nanos() as u64;
        PATH.with(|p| {
            let mut path = p.borrow_mut();
            {
                let mut totals = table().lock().unwrap();
                match totals.get_mut(path.as_str()) {
                    Some(entry) => {
                        entry.0 += 1;
                        entry.1 += elapsed_ns;
                    }
                    // First completion of this path (warm-up): the one
                    // place a key is allocated.
                    None => {
                        totals.insert(path.clone(), (1, elapsed_ns));
                    }
                }
            }
            path.truncate(self.trunc);
        });
    }
}

/// One node of the reported timing tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    /// Last path segment (span name).
    pub name: String,
    /// Number of completed spans at exactly this path. Zero for
    /// intermediate nodes that only exist as parents.
    pub calls: u64,
    /// Total wall time at exactly this path, in nanoseconds
    /// (children's time is included — the parent's clock was running).
    pub total_ns: u64,
    /// Child spans, sorted by name.
    pub children: Vec<SpanNode>,
}

fn insert(nodes: &mut Vec<SpanNode>, segments: &[&str], calls: u64, total_ns: u64) {
    let Some((&head, rest)) = segments.split_first() else {
        return;
    };
    let node = match nodes.iter().position(|n| n.name == head) {
        Some(i) => &mut nodes[i],
        None => {
            nodes.push(SpanNode {
                name: head.to_string(),
                calls: 0,
                total_ns: 0,
                children: Vec::new(),
            });
            nodes.last_mut().unwrap()
        }
    };
    if rest.is_empty() {
        node.calls += calls;
        node.total_ns += total_ns;
    } else {
        insert(&mut node.children, rest, calls, total_ns);
    }
}

/// The completed-span tree so far. Sibling order follows the sorted
/// dotted paths, so the output is deterministic.
pub fn span_snapshot() -> Vec<SpanNode> {
    let totals = table().lock().unwrap();
    let mut roots = Vec::new();
    for (path, &(calls, total_ns)) in totals.iter() {
        let segments: Vec<&str> = path.split('.').collect();
        insert(&mut roots, &segments, calls, total_ns);
    }
    roots
}

/// Discards all recorded span timings (open guards still record on
/// drop). Meant for tests and phase isolation.
pub fn reset_spans() {
    table().lock().unwrap().clear();
}

/// Looks up a node by dotted path in a snapshot (helper for tests and
/// acceptance checks).
pub fn find<'a>(nodes: &'a [SpanNode], path: &str) -> Option<&'a SpanNode> {
    let (head, rest) = match path.split_once('.') {
        Some((h, r)) => (h, Some(r)),
        None => (path, None),
    };
    let node = nodes.iter().find(|n| n.name == head)?;
    match rest {
        None => Some(node),
        Some(r) => find(&node.children, r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_build_a_tree() {
        {
            let _outer = Span::enter("obs_test_outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = Span::enter("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let _inner2 = Span::enter("inner2");
        }
        let snap = span_snapshot();
        let outer = find(&snap, "obs_test_outer").expect("outer recorded");
        assert_eq!(outer.calls, 1);
        let inner = find(&snap, "obs_test_outer.inner").expect("inner nested");
        assert_eq!(inner.calls, 1);
        assert!(inner.total_ns > 0);
        assert!(
            outer.total_ns >= inner.total_ns,
            "parent includes child time"
        );
        assert!(find(&snap, "obs_test_outer.inner2").is_some());
        assert!(find(&snap, "inner").is_none(), "inner is not a root");
    }

    #[test]
    fn dotted_names_create_levels() {
        {
            let _s = Span::enter("obs_test_ldp.partition");
        }
        let snap = span_snapshot();
        let leaf = find(&snap, "obs_test_ldp.partition").expect("leaf");
        assert_eq!(leaf.calls, 1);
        let parent = find(&snap, "obs_test_ldp").expect("intermediate");
        assert_eq!(parent.calls, 0, "purely structural node");
    }

    #[test]
    fn repeated_spans_accumulate_calls() {
        for _ in 0..5 {
            let _s = Span::enter("obs_test_repeat");
        }
        let snap = span_snapshot();
        assert!(find(&snap, "obs_test_repeat").unwrap().calls >= 5);
    }

    #[test]
    fn path_restores_after_nested_drops() {
        // The thread-local path must come back to its pre-enter state
        // even through interleaved sibling spans.
        {
            let _a = Span::enter("obs_test_restore");
            {
                let _b = Span::enter("child");
            }
            {
                let _c = Span::enter("child2");
            }
        }
        let before = PATH.with(|p| p.borrow().clone());
        {
            let _d = Span::enter("obs_test_restore2");
        }
        let after = PATH.with(|p| p.borrow().clone());
        assert_eq!(before, after, "path not restored");
        let snap = span_snapshot();
        assert!(find(&snap, "obs_test_restore.child2").is_some());
    }
}
