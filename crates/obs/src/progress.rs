//! Throttled live progress on stderr.
//!
//! A [`Progress`] reporter prints at most one line per
//! [`Progress::MIN_INTERVAL_MS`] (plus always the final line), shaped
//! like `point 3/12 · scheduler=RLE · 48k trials/s · ETA 00:41`.
//! Reporting is globally gated by [`set_progress`], off by default, so
//! instrumented library code stays silent under tests and in scripts
//! unless a `--progress` flag switches it on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enables or disables progress output.
pub fn set_progress(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether progress output is currently enabled.
pub fn progress_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A throttled progress reporter for a fixed number of steps.
pub struct Progress {
    label: &'static str,
    unit: &'static str,
    total: u64,
    start: Instant,
    /// Milliseconds after `start` of the last printed line.
    last_print_ms: AtomicU64,
}

impl Progress {
    /// Minimum milliseconds between printed lines.
    pub const MIN_INTERVAL_MS: u64 = 100;

    /// A reporter for `total` steps. `label` names the step ("point"),
    /// `unit` names the throughput item ("trials").
    pub fn new(label: &'static str, unit: &'static str, total: u64) -> Self {
        Self {
            label,
            unit,
            total,
            start: Instant::now(),
            last_print_ms: AtomicU64::new(0),
        }
    }

    /// Reports step `done` of `total` finished. `detail` is free-form
    /// context ("scheduler=RLE"); `items` is the cumulative number of
    /// throughput units processed so far. Throttled, and silent unless
    /// [`set_progress`] enabled output.
    pub fn report(&self, done: u64, detail: &str, items: u64) {
        if !progress_enabled() {
            return;
        }
        let elapsed_ms = self.start.elapsed().as_millis() as u64;
        let finished = done >= self.total;
        if !finished {
            let last = self.last_print_ms.load(Ordering::Relaxed);
            if elapsed_ms.saturating_sub(last) < Self::MIN_INTERVAL_MS
                || self
                    .last_print_ms
                    .compare_exchange(last, elapsed_ms, Ordering::Relaxed, Ordering::Relaxed)
                    .is_err()
            {
                return; // within throttle window, or another thread won
            }
        }
        let secs = (elapsed_ms as f64 / 1000.0).max(1e-9);
        let rate = items as f64 / secs;
        let eta = if done == 0 {
            "--:--".to_string()
        } else {
            fmt_mmss(elapsed_ms as f64 / 1000.0 * (self.total - done) as f64 / done as f64)
        };
        eprintln!(
            "{} {done}/{} · {detail} · {} {}/s · ETA {eta}",
            self.label,
            self.total,
            fmt_count(rate),
            self.unit
        );
    }
}

/// `48321.7` → `"48k"`, `1.9e6` → `"1.9M"`, `417.0` → `"417"`.
fn fmt_count(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.0}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Seconds → `"mm:ss"` (minutes unbounded).
fn fmt_mmss(secs: f64) -> String {
    let s = secs.round().max(0.0) as u64;
    format!("{:02}:{:02}", s / 60, s % 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_count(417.4), "417");
        assert_eq!(fmt_count(48_321.7), "48k");
        assert_eq!(fmt_count(1_900_000.0), "1.9M");
        assert_eq!(fmt_mmss(41.0), "00:41");
        assert_eq!(fmt_mmss(125.4), "02:05");
    }

    #[test]
    fn disabled_by_default_and_toggleable() {
        // Other tests may race on the global; just exercise the API.
        let p = Progress::new("point", "trials", 12);
        p.report(3, "scheduler=RLE", 144_000); // silent unless enabled
        set_progress(true);
        assert!(progress_enabled());
        p.report(12, "scheduler=RLE", 576_000); // final line always prints
        set_progress(false);
        assert!(!progress_enabled());
    }
}
