//! The global metric registry: counters, gauges, and histograms.
//!
//! Counters and histograms shard their state across
//! [`SHARDS`] cache-line-padded atomics. Each thread is assigned a
//! shard by a thread-local sequential id, so concurrent increments
//! from different `rayon` workers land on different cache lines and a
//! hot-loop increment costs one relaxed `fetch_add`. [`snapshot`]
//! merges the shards into plain serializable maps.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of per-metric shards; a power of two ≥ typical core counts.
pub const SHARDS: usize = 16;

/// A `u64` on its own cache line, so shards never false-share.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    fn zero() -> Self {
        Self(AtomicU64::new(0))
    }
}

/// The calling thread's shard index (stable for the thread's lifetime).
fn shard_index() -> usize {
    static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// Lock-free f64 accumulation into an atomic bit pattern.
fn add_f64(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

struct CounterCell {
    shards: [PaddedU64; SHARDS],
}

impl CounterCell {
    fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| PaddedU64::zero()),
        }
    }

    fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A monotonically increasing counter handle (cheap to clone).
#[derive(Clone)]
pub struct Counter(Arc<CounterCell>);

impl Counter {
    /// Adds `n`; one relaxed atomic op on the caller's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.shards[shard_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current merged total.
    pub fn value(&self) -> u64 {
        self.0.sum()
    }
}

/// A last-write-wins `f64` gauge handle.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The last stored value (0.0 if never set).
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistogramShard {
    buckets: Vec<AtomicU64>,
    overflow: AtomicU64,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

struct HistogramCell {
    /// Finite bucket upper bounds, strictly increasing. A value `v`
    /// falls into the first bucket with `v <= bound` ("less-or-equal"
    /// semantics); values above the last bound count as overflow.
    bounds: Vec<f64>,
    shards: Vec<HistogramShard>,
}

impl HistogramCell {
    fn new(bounds: Vec<f64>) -> Self {
        let shards = (0..SHARDS)
            .map(|_| HistogramShard {
                buckets: (0..bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                overflow: AtomicU64::new(0),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0),
            })
            .collect();
        Self { bounds, shards }
    }

    fn reset(&self) {
        for s in &self.shards {
            for b in &s.buckets {
                b.store(0, Ordering::Relaxed);
            }
            s.overflow.store(0, Ordering::Relaxed);
            s.count.store(0, Ordering::Relaxed);
            s.sum_bits.store(0, Ordering::Relaxed);
        }
    }
}

/// A fixed-bucket histogram handle.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: f64) {
        let cell = &*self.0;
        let shard = &cell.shards[shard_index()];
        let idx = cell.bounds.partition_point(|&b| v > b);
        if idx < cell.bounds.len() {
            shard.buckets[idx].fetch_add(1, Ordering::Relaxed);
        } else {
            shard.overflow.fetch_add(1, Ordering::Relaxed);
        }
        shard.count.fetch_add(1, Ordering::Relaxed);
        add_f64(&shard.sum_bits, v);
    }

    /// The merged current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let cell = &*self.0;
        let mut counts = vec![0u64; cell.bounds.len()];
        let mut overflow = 0u64;
        let mut count = 0u64;
        let mut sum = 0.0f64;
        for s in &cell.shards {
            for (acc, b) in counts.iter_mut().zip(&s.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
            overflow += s.overflow.load(Ordering::Relaxed);
            count += s.count.load(Ordering::Relaxed);
            sum += f64::from_bits(s.sum_bits.load(Ordering::Relaxed));
        }
        HistogramSnapshot {
            bounds: cell.bounds.clone(),
            counts,
            overflow,
            count,
            sum,
        }
    }
}

/// Serializable state of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (finite, increasing).
    pub bounds: Vec<f64>,
    /// Observations per bucket (`v <= bounds[i]`, first match).
    pub counts: Vec<u64>,
    /// Observations above the last bound.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

/// Serializable state of the whole registry at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot (useful as a fixture).
    pub fn empty() -> Self {
        Self {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Returns (registering on first use) the counter named `name`.
pub fn counter(name: &str) -> Counter {
    let mut map = registry().counters.lock().unwrap();
    let cell = map
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(CounterCell::new()));
    Counter(Arc::clone(cell))
}

/// Returns (registering on first use) the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut map = registry().gauges.lock().unwrap();
    let cell = map
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(AtomicU64::new(0)));
    Gauge(Arc::clone(cell))
}

/// Returns (registering on first use) the histogram named `name` with
/// the given finite, strictly increasing bucket upper `bounds`. An
/// existing histogram keeps its original bounds.
///
/// # Panics
/// Panics if `bounds` is empty, non-increasing, or non-finite on
/// first registration.
pub fn histogram(name: &str, bounds: &[f64]) -> Histogram {
    let mut map = registry().histograms.lock().unwrap();
    let cell = map.entry(name.to_string()).or_insert_with(|| {
        assert!(!bounds.is_empty(), "histogram {name}: no buckets");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram {name}: bounds must be finite and strictly increasing"
        );
        Arc::new(HistogramCell::new(bounds.to_vec()))
    });
    Histogram(Arc::clone(cell))
}

/// Merges every metric's shards into a serializable snapshot.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), v.sum()))
        .collect();
    let gauges = reg
        .gauges
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), Histogram(Arc::clone(v)).snapshot()))
        .collect();
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Zeroes every registered metric (registrations and handles stay
/// valid). Meant for tests and for isolating phases of a long process.
pub fn reset_metrics() {
    let reg = registry();
    for cell in reg.counters.lock().unwrap().values() {
        cell.reset();
    }
    for cell in reg.gauges.lock().unwrap().values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in reg.histograms.lock().unwrap().values() {
        cell.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state_by_name() {
        let a = counter("obs.test.shared");
        let b = counter("obs.test.shared");
        a.add(3);
        b.incr();
        assert_eq!(a.value(), b.value());
        assert!(a.value() >= 4);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = gauge("obs.test.gauge");
        g.set(2.5);
        g.set(-7.25);
        assert_eq!(g.value(), -7.25);
        assert_eq!(snapshot().gauges["obs.test.gauge"], -7.25);
    }

    #[test]
    fn histogram_respects_bucket_boundaries() {
        // "le" semantics: a value equal to a bound lands in that bucket.
        let h = histogram("obs.test.bounds", &[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 1.5, 10.0, 100.0, 1000.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 1]);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.count, 6);
        assert!((s.sum - 1113.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_keeps_first_registration_bounds() {
        let h1 = histogram("obs.test.first_bounds", &[5.0, 50.0]);
        let h2 = histogram("obs.test.first_bounds", &[999.0]);
        h1.record(7.0);
        assert_eq!(h2.snapshot().bounds, vec![5.0, 50.0]);
        assert_eq!(h2.snapshot().counts, vec![0, 1]);
    }

    #[test]
    fn shards_merge_deterministically_under_rayon_join() {
        let c = counter("obs.test.join_total");
        let h = histogram("obs.test.join_hist", &[0.5, 1.5]);
        rayon::join(
            || {
                rayon::join(
                    || {
                        for _ in 0..10_000 {
                            c.incr();
                            h.record(1.0);
                        }
                    },
                    || {
                        for _ in 0..10_000 {
                            c.add(2);
                        }
                    },
                )
            },
            || {
                for _ in 0..10_000 {
                    c.incr();
                }
            },
        );
        // 10k + 20k + 10k regardless of thread interleaving.
        assert_eq!(c.value(), 40_000);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![0, 10_000]);
        assert_eq!(s.count, 10_000);
        assert!((s.sum - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn snapshot_includes_all_kinds() {
        counter("obs.test.snap_counter").add(5);
        gauge("obs.test.snap_gauge").set(1.5);
        histogram("obs.test.snap_hist", &[1.0]).record(0.25);
        let s = snapshot();
        assert!(s.counters["obs.test.snap_counter"] >= 5);
        assert_eq!(s.gauges["obs.test.snap_gauge"], 1.5);
        assert_eq!(s.histograms["obs.test.snap_hist"].count, 1);
    }
}
