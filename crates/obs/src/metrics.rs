//! The global metric registry: counters, gauges, and histograms.
//!
//! Counters and histograms shard their state across
//! [`SHARDS`] cache-line-padded atomics. Each thread is assigned a
//! shard by a thread-local sequential id, so concurrent increments
//! from different `rayon` workers land on different cache lines and a
//! hot-loop increment costs one relaxed `fetch_add`. [`snapshot`]
//! merges the shards into plain serializable maps.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of per-metric shards; a power of two ≥ typical core counts.
pub const SHARDS: usize = 16;

/// A `u64` on its own cache line, so shards never false-share.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    fn zero() -> Self {
        Self(AtomicU64::new(0))
    }
}

/// The calling thread's shard index (stable for the thread's lifetime).
fn shard_index() -> usize {
    static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// Lock-free f64 accumulation into an atomic bit pattern.
fn add_f64(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

struct CounterCell {
    shards: [PaddedU64; SHARDS],
}

impl CounterCell {
    fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| PaddedU64::zero()),
        }
    }

    fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A monotonically increasing counter handle (cheap to clone).
#[derive(Clone)]
pub struct Counter(Arc<CounterCell>);

impl Counter {
    /// Adds `n`; one relaxed atomic op on the caller's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.shards[shard_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current merged total.
    pub fn value(&self) -> u64 {
        self.0.sum()
    }
}

/// A last-write-wins `f64` gauge handle.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The last stored value (0.0 if never set).
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistogramShard {
    buckets: Vec<AtomicU64>,
    overflow: AtomicU64,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

struct HistogramCell {
    /// Finite bucket upper bounds, strictly increasing. A value `v`
    /// falls into the first bucket with `v <= bound` ("less-or-equal"
    /// semantics); values above the last bound count as overflow.
    bounds: Vec<f64>,
    shards: Vec<HistogramShard>,
}

impl HistogramCell {
    fn new(bounds: Vec<f64>) -> Self {
        let shards = (0..SHARDS)
            .map(|_| HistogramShard {
                buckets: (0..bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                overflow: AtomicU64::new(0),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0),
            })
            .collect();
        Self { bounds, shards }
    }

    fn reset(&self) {
        for s in &self.shards {
            for b in &s.buckets {
                b.store(0, Ordering::Relaxed);
            }
            s.overflow.store(0, Ordering::Relaxed);
            s.count.store(0, Ordering::Relaxed);
            s.sum_bits.store(0, Ordering::Relaxed);
        }
    }
}

/// A fixed-bucket histogram handle.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: f64) {
        let cell = &*self.0;
        let shard = &cell.shards[shard_index()];
        let idx = cell.bounds.partition_point(|&b| v > b);
        if idx < cell.bounds.len() {
            shard.buckets[idx].fetch_add(1, Ordering::Relaxed);
        } else {
            shard.overflow.fetch_add(1, Ordering::Relaxed);
        }
        shard.count.fetch_add(1, Ordering::Relaxed);
        add_f64(&shard.sum_bits, v);
    }

    /// The merged current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let cell = &*self.0;
        let mut counts = vec![0u64; cell.bounds.len()];
        let mut overflow = 0u64;
        let mut count = 0u64;
        let mut sum = 0.0f64;
        for s in &cell.shards {
            for (acc, b) in counts.iter_mut().zip(&s.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
            overflow += s.overflow.load(Ordering::Relaxed);
            count += s.count.load(Ordering::Relaxed);
            sum += f64::from_bits(s.sum_bits.load(Ordering::Relaxed));
        }
        HistogramSnapshot::from_buckets(cell.bounds.clone(), counts, overflow, count, sum)
    }
}

/// Serializable state of one histogram, including derived p50/p95/p99
/// quantiles. Quantiles are exact with respect to the bucketed data:
/// the q-quantile is the smallest bucket upper bound whose cumulative
/// count reaches `ceil(q × count)`, or `None` when the histogram is
/// empty or the rank falls into the unbounded overflow bucket.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (finite, increasing).
    pub bounds: Vec<f64>,
    /// Observations per bucket (`v <= bounds[i]`, first match).
    pub counts: Vec<u64>,
    /// Observations above the last bound.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Derived median (see [`HistogramSnapshot::quantile`]).
    pub p50: Option<f64>,
    /// Derived 95th percentile.
    pub p95: Option<f64>,
    /// Derived 99th percentile.
    pub p99: Option<f64>,
}

impl HistogramSnapshot {
    /// Builds a snapshot from raw bucket state, filling the derived
    /// quantile fields.
    pub fn from_buckets(
        bounds: Vec<f64>,
        counts: Vec<u64>,
        overflow: u64,
        count: u64,
        sum: f64,
    ) -> Self {
        let mut s = Self {
            bounds,
            counts,
            overflow,
            count,
            sum,
            p50: None,
            p95: None,
            p99: None,
        };
        s.p50 = s.quantile(0.50);
        s.p95 = s.quantile(0.95);
        s.p99 = s.quantile(0.99);
        s
    }

    /// The q-quantile (`0 < q <= 1`) of the bucketed distribution: the
    /// smallest bucket upper bound whose cumulative count reaches
    /// `ceil(q × count)`. Returns `None` for an empty histogram, a
    /// `q` outside `(0, 1]`, or a rank that lands in the overflow
    /// bucket (no finite bound can be named for it).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(q > 0.0 && q <= 1.0) {
            return None;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (bound, c) in self.bounds.iter().zip(&self.counts) {
            cumulative += c;
            if cumulative >= rank {
                return Some(*bound);
            }
        }
        None // rank falls in the overflow bucket
    }
}

// Manual impl so snapshots serialized before the derived-quantile
// fields existed (manifest versions <= 2) still load: missing
// quantiles are recomputed from the bucket counts. (The vendored
// serde derive requires every named field to be present.)
impl Deserialize for HistogramSnapshot {
    fn deserialize_node(node: &serde::Node) -> Result<Self, serde::DeError> {
        fn field<T: Deserialize>(node: &serde::Node, name: &str) -> Result<T, serde::DeError> {
            Deserialize::deserialize_node(
                node.get(name)
                    .ok_or_else(|| serde::DeError(format!("missing field `{name}`")))?,
            )
        }
        if !matches!(node, serde::Node::Map(_)) {
            return Err(serde::DeError(
                "invalid type: expected a map for struct HistogramSnapshot".to_string(),
            ));
        }
        let base = Self::from_buckets(
            field(node, "bounds")?,
            field(node, "counts")?,
            field(node, "overflow")?,
            field(node, "count")?,
            field(node, "sum")?,
        );
        let opt = |name: &str| -> Result<Option<f64>, serde::DeError> {
            match node.get(name) {
                None => Ok(None),
                Some(n) => Deserialize::deserialize_node(n),
            }
        };
        // Prefer recorded quantiles when present (round-trip fidelity);
        // otherwise keep the recomputed ones.
        Ok(Self {
            p50: opt("p50")?.or(base.p50),
            p95: opt("p95")?.or(base.p95),
            p99: opt("p99")?.or(base.p99),
            ..base
        })
    }
}

/// Serializable state of the whole registry at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot (useful as a fixture).
    pub fn empty() -> Self {
        Self {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Returns (registering on first use) the counter named `name`.
pub fn counter(name: &str) -> Counter {
    let mut map = registry().counters.lock().unwrap();
    let cell = map
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(CounterCell::new()));
    Counter(Arc::clone(cell))
}

/// Returns (registering on first use) the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut map = registry().gauges.lock().unwrap();
    let cell = map
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(AtomicU64::new(0)));
    Gauge(Arc::clone(cell))
}

/// Returns (registering on first use) the histogram named `name` with
/// the given finite, strictly increasing bucket upper `bounds`. An
/// existing histogram keeps its original bounds.
///
/// # Panics
/// Panics if `bounds` is empty, non-increasing, or non-finite on
/// first registration.
pub fn histogram(name: &str, bounds: &[f64]) -> Histogram {
    let mut map = registry().histograms.lock().unwrap();
    let cell = map.entry(name.to_string()).or_insert_with(|| {
        assert!(!bounds.is_empty(), "histogram {name}: no buckets");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram {name}: bounds must be finite and strictly increasing"
        );
        Arc::new(HistogramCell::new(bounds.to_vec()))
    });
    Histogram(Arc::clone(cell))
}

/// Merges every metric's shards into a serializable snapshot.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), v.sum()))
        .collect();
    let gauges = reg
        .gauges
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), Histogram(Arc::clone(v)).snapshot()))
        .collect();
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Zeroes every registered metric (registrations and handles stay
/// valid). Meant for tests and for isolating phases of a long process.
pub fn reset_metrics() {
    let reg = registry();
    for cell in reg.counters.lock().unwrap().values() {
        cell.reset();
    }
    for cell in reg.gauges.lock().unwrap().values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in reg.histograms.lock().unwrap().values() {
        cell.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state_by_name() {
        let a = counter("obs.test.shared");
        let b = counter("obs.test.shared");
        a.add(3);
        b.incr();
        assert_eq!(a.value(), b.value());
        assert!(a.value() >= 4);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = gauge("obs.test.gauge");
        g.set(2.5);
        g.set(-7.25);
        assert_eq!(g.value(), -7.25);
        assert_eq!(snapshot().gauges["obs.test.gauge"], -7.25);
    }

    #[test]
    fn histogram_respects_bucket_boundaries() {
        // "le" semantics: a value equal to a bound lands in that bucket.
        let h = histogram("obs.test.bounds", &[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 1.5, 10.0, 100.0, 1000.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 1]);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.count, 6);
        assert!((s.sum - 1113.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_keeps_first_registration_bounds() {
        let h1 = histogram("obs.test.first_bounds", &[5.0, 50.0]);
        let h2 = histogram("obs.test.first_bounds", &[999.0]);
        h1.record(7.0);
        assert_eq!(h2.snapshot().bounds, vec![5.0, 50.0]);
        assert_eq!(h2.snapshot().counts, vec![0, 1]);
    }

    #[test]
    fn shards_merge_deterministically_under_rayon_join() {
        let c = counter("obs.test.join_total");
        let h = histogram("obs.test.join_hist", &[0.5, 1.5]);
        rayon::join(
            || {
                rayon::join(
                    || {
                        for _ in 0..10_000 {
                            c.incr();
                            h.record(1.0);
                        }
                    },
                    || {
                        for _ in 0..10_000 {
                            c.add(2);
                        }
                    },
                )
            },
            || {
                for _ in 0..10_000 {
                    c.incr();
                }
            },
        );
        // 10k + 20k + 10k regardless of thread interleaving.
        assert_eq!(c.value(), 40_000);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![0, 10_000]);
        assert_eq!(s.count, 10_000);
        assert!((s.sum - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn quantiles_match_a_known_distribution() {
        // 100 observations: 50 land in (<=10), 30 in (<=100), 15 in
        // (<=1000), 5 overflow. Ranks: p50 -> 50th obs -> bucket 10;
        // p95 -> 95th -> bucket 1000; p99 -> 99th -> overflow (None).
        let h = histogram("obs.test.quantiles", &[10.0, 100.0, 1000.0]);
        for _ in 0..50 {
            h.record(5.0);
        }
        for _ in 0..30 {
            h.record(50.0);
        }
        for _ in 0..15 {
            h.record(500.0);
        }
        for _ in 0..5 {
            h.record(5000.0);
        }
        let s = h.snapshot();
        assert_eq!(s.p50, Some(10.0));
        assert_eq!(s.p95, Some(1000.0));
        assert_eq!(s.p99, None);
        // Exact boundary rank: the 80th observation closes bucket 100.
        assert_eq!(s.quantile(0.80), Some(100.0));
        assert_eq!(s.quantile(0.81), Some(1000.0));
        // q=1.0 lands in overflow here; with no overflow it names the
        // last populated bucket.
        assert_eq!(s.quantile(1.0), None);
    }

    #[test]
    fn quantiles_of_single_bucket_and_empty_histograms() {
        let empty = HistogramSnapshot::from_buckets(vec![1.0, 2.0], vec![0, 0], 0, 0, 0.0);
        assert_eq!(empty.p50, None);
        assert_eq!(empty.quantile(0.5), None);

        let one = HistogramSnapshot::from_buckets(vec![1.0, 2.0], vec![0, 1], 0, 1, 1.5);
        assert_eq!(one.p50, Some(2.0));
        assert_eq!(one.p95, Some(2.0));
        assert_eq!(one.p99, Some(2.0));
        assert_eq!(one.quantile(1.0), Some(2.0));
        // Out-of-range q is rejected, not clamped.
        assert_eq!(one.quantile(0.0), None);
        assert_eq!(one.quantile(1.5), None);
    }

    #[test]
    fn quantile_fields_survive_a_serde_round_trip_and_backfill() {
        let s = HistogramSnapshot::from_buckets(vec![10.0, 100.0], vec![3, 1], 0, 4, 60.0);
        assert_eq!(s.p50, Some(10.0));
        let json = serde_json::to_string(&s).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);

        // A pre-quantile (manifest v2) payload backfills from counts.
        let legacy =
            "{\"bounds\":[10.0,100.0],\"counts\":[3,1],\"overflow\":0,\"count\":4,\"sum\":60.0}";
        let back: HistogramSnapshot = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.p50, Some(10.0));
        assert_eq!(back.p95, Some(100.0));
        assert_eq!(back, s);
    }

    #[test]
    fn snapshot_includes_all_kinds() {
        counter("obs.test.snap_counter").add(5);
        gauge("obs.test.snap_gauge").set(1.5);
        histogram("obs.test.snap_hist", &[1.0]).record(0.25);
        let s = snapshot();
        assert!(s.counters["obs.test.snap_counter"] >= 5);
        assert_eq!(s.gauges["obs.test.snap_gauge"], 1.5);
        assert_eq!(s.histograms["obs.test.snap_hist"].count, 1);
    }
}
