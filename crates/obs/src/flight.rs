//! Flight recorder: a black box for the online engine.
//!
//! [`FlightRecorder`] retains the last K [`SlotRecord`]s — and, when
//! trace capture is on, each slot's decision-trace events — in a ring,
//! and runs a small [`AnomalyDetector`] over the stream. When a
//! detector fires, [`FlightRecorder::dump`] writes a post-mortem
//! bundle to a directory:
//!
//! * `postmortem.json` — the anomaly, the recorder configuration, and
//!   the retained slot records (schema-versioned, stable key order);
//! * `flight_trace.jsonl` — every retained trace event, including the
//!   `SlotStart`/`SlotEnd` markers (forensic view, not replayable as
//!   a whole because each slot's block is numbered in that slot's
//!   residual sub-problem);
//! * `replay_trace.jsonl` — the most recent slot's scheduler block
//!   with the slot markers stripped, replayable with
//!   `certify::replay_trace` against that slot's restricted
//!   sub-problem (the engine writes the sub-instance alongside).
//!
//! The detectors cover the four online failure classes: a wall-clock
//! **stall** (one slot far slower than the running mean), **sustained
//! queue growth** (the stability lens: backlog strictly increasing for
//! a window), a **packet-conservation violation** (arrived ≠
//! delivered + abandoned + queued, checked by the engine), and a
//! **zero-delivery streak** (backlogged slots that deliver nothing).
//! The detector latches: after the first anomaly it goes quiet so one
//! incident produces one bundle.

use crate::timeseries::SlotRecord;
use crate::trace::{Trace, TraceEvent};
use serde::Serialize;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

/// Post-mortem bundle schema version (`postmortem.json`).
pub const POSTMORTEM_VERSION: u32 = 1;

/// What tripped the flight recorder.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Anomaly {
    /// One slot's wall time exceeded `factor` × the running mean.
    SlotStall {
        slot: u64,
        slot_ns: u64,
        mean_ns: u64,
        factor: f64,
    },
    /// Backlog increased strictly for `window` consecutive slots.
    QueueGrowth {
        slot: u64,
        window: u32,
        backlog_start: u64,
        backlog_end: u64,
    },
    /// Cumulative arrived ≠ delivered + abandoned + queued.
    ConservationViolation {
        slot: u64,
        arrived: u64,
        delivered: u64,
        abandoned: u64,
        queued: u64,
    },
    /// `window` consecutive backlogged slots delivered zero packets.
    ZeroDeliveryStreak { slot: u64, window: u32 },
}

impl Anomaly {
    /// Short stable tag (`slot_stall`, `queue_growth`, …) for logs and
    /// health lines.
    pub fn tag(&self) -> &'static str {
        match self {
            Anomaly::SlotStall { .. } => "slot_stall",
            Anomaly::QueueGrowth { .. } => "queue_growth",
            Anomaly::ConservationViolation { .. } => "conservation_violation",
            Anomaly::ZeroDeliveryStreak { .. } => "zero_delivery_streak",
        }
    }
}

/// Flight-recorder configuration: ring size and detector thresholds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FlightConfig {
    /// Slots retained in the ring.
    pub capacity: usize,
    /// Stall fires when `slot_ns > stall_factor × running mean` (and
    /// the warmup below has passed).
    pub stall_factor: f64,
    /// Stall also requires the slot to exceed this absolute floor, so
    /// micro-instances with µs slots don't trip on scheduler jitter.
    pub min_stall_ns: u64,
    /// Slots of strictly increasing backlog before `QueueGrowth` fires.
    pub growth_window: u32,
    /// Backlogged-but-zero-delivery slots before the streak fires.
    pub zero_delivery_window: u32,
    /// Capture each slot's decision-trace events into the ring (the
    /// engine must run its scheduler traced for this to see anything).
    pub capture_trace: bool,
}

impl Default for FlightConfig {
    fn default() -> Self {
        Self {
            capacity: 64,
            stall_factor: 10.0,
            min_stall_ns: 250_000_000,
            growth_window: 32,
            zero_delivery_window: 64,
            capture_trace: true,
        }
    }
}

/// Streaming anomaly detector over per-slot records. Latches on the
/// first anomaly.
#[derive(Debug, Default)]
pub struct AnomalyDetector {
    slots_seen: u64,
    slot_ns_total: u128,
    prev_backlog: Option<u64>,
    growth_run: u32,
    growth_start_backlog: u64,
    zero_delivery_run: u32,
    fired: bool,
}

/// Slots of timing history required before stall detection arms.
const STALL_WARMUP_SLOTS: u64 = 8;

impl AnomalyDetector {
    /// Whether an anomaly has already fired (the detector is quiet).
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Feeds one slot record; returns the first anomaly it implies.
    /// `conserved` is the engine's packet-conservation verdict for the
    /// cumulative totals (`arrived == delivered + abandoned + queued`).
    pub fn observe(
        &mut self,
        cfg: &FlightConfig,
        rec: &SlotRecord,
        conserved: Option<(bool, u64, u64, u64, u64)>,
    ) -> Option<Anomaly> {
        if self.fired {
            return None;
        }

        // Conservation is an invariant, not a trend: check it first.
        if let Some((false, arrived, delivered, abandoned, queued)) = conserved {
            self.fired = true;
            return Some(Anomaly::ConservationViolation {
                slot: rec.slot,
                arrived,
                delivered,
                abandoned,
                queued,
            });
        }

        // Stall: compare against the mean of *previous* slots so one
        // slow slot cannot poison its own baseline.
        if rec.slot_ns > 0 {
            if self.slots_seen >= STALL_WARMUP_SLOTS {
                let mean = (self.slot_ns_total / u128::from(self.slots_seen)) as u64;
                if rec.slot_ns >= cfg.min_stall_ns
                    && (rec.slot_ns as f64) > cfg.stall_factor * (mean as f64)
                {
                    self.fired = true;
                    return Some(Anomaly::SlotStall {
                        slot: rec.slot,
                        slot_ns: rec.slot_ns,
                        mean_ns: mean,
                        factor: rec.slot_ns as f64 / (mean as f64).max(1.0),
                    });
                }
            }
            self.slots_seen += 1;
            self.slot_ns_total += u128::from(rec.slot_ns);
        }

        // Sustained queue growth: strictly increasing backlog run.
        if let Some(prev) = self.prev_backlog {
            if rec.backlog > prev {
                if self.growth_run == 0 {
                    self.growth_start_backlog = prev;
                }
                self.growth_run += 1;
            } else if rec.backlog < prev {
                self.growth_run = 0;
            }
            if self.growth_run >= cfg.growth_window {
                self.fired = true;
                return Some(Anomaly::QueueGrowth {
                    slot: rec.slot,
                    window: self.growth_run,
                    backlog_start: self.growth_start_backlog,
                    backlog_end: rec.backlog,
                });
            }
        }
        self.prev_backlog = Some(rec.backlog);

        // Zero-delivery streak: backlogged slots that serve nothing.
        if rec.backlogged > 0 && rec.delivered == 0 {
            self.zero_delivery_run += 1;
            if self.zero_delivery_run >= cfg.zero_delivery_window {
                self.fired = true;
                return Some(Anomaly::ZeroDeliveryStreak {
                    slot: rec.slot,
                    window: self.zero_delivery_run,
                });
            }
        } else {
            self.zero_delivery_run = 0;
        }

        None
    }
}

/// Paths written by [`FlightRecorder::dump`].
#[derive(Debug, Clone)]
pub struct PostmortemPaths {
    /// `postmortem.json` — anomaly + retained slot records.
    pub postmortem: PathBuf,
    /// `flight_trace.jsonl` — all retained trace events (forensics).
    pub flight_trace: Option<PathBuf>,
    /// `replay_trace.jsonl` — last slot's block, markers stripped.
    pub replay_trace: Option<PathBuf>,
}

#[derive(Serialize)]
struct PostmortemDoc {
    version: u32,
    anomaly: Anomaly,
    config: FlightConfig,
    slots: Vec<SlotRecord>,
}

/// The black box: bounded ring of slot records (+ optional per-slot
/// trace events) plus the anomaly detector.
pub struct FlightRecorder {
    cfg: FlightConfig,
    ring: VecDeque<(SlotRecord, Vec<TraceEvent>)>,
    detector: AnomalyDetector,
}

impl FlightRecorder {
    /// A recorder with the given configuration.
    pub fn new(cfg: FlightConfig) -> Self {
        let capacity = cfg.capacity.max(1);
        Self {
            cfg: FlightConfig { capacity, ..cfg },
            ring: VecDeque::with_capacity(capacity),
            detector: AnomalyDetector::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FlightConfig {
        &self.cfg
    }

    /// Whether the engine should run its scheduler traced this slot.
    pub fn wants_trace(&self) -> bool {
        self.cfg.capture_trace && !self.detector.fired()
    }

    /// Whether an anomaly has already fired.
    pub fn fired(&self) -> bool {
        self.detector.fired()
    }

    /// Retains one slot (record + that slot's trace events) and runs
    /// the detectors. See [`AnomalyDetector::observe`] for `conserved`.
    pub fn observe(
        &mut self,
        rec: &SlotRecord,
        trace_events: Vec<TraceEvent>,
        conserved: Option<(bool, u64, u64, u64, u64)>,
    ) -> Option<Anomaly> {
        if self.ring.len() == self.cfg.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back((*rec, trace_events));
        self.detector.observe(&self.cfg, rec, conserved)
    }

    /// The retained slot records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &SlotRecord> {
        self.ring.iter().map(|(r, _)| r)
    }

    /// All retained trace events in slot order (with slot markers).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.ring
            .iter()
            .flat_map(|(_, ev)| ev.iter().cloned())
            .collect()
    }

    /// The most recent slot's scheduler block with `SlotStart` /
    /// `SlotEnd` markers stripped — the replayable part of the box.
    pub fn replay_events(&self) -> Vec<TraceEvent> {
        self.ring
            .back()
            .map(|(_, ev)| {
                ev.iter()
                    .filter(|e| {
                        !matches!(e, TraceEvent::SlotStart { .. } | TraceEvent::SlotEnd { .. })
                    })
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Writes the post-mortem bundle for `anomaly` into `dir`
    /// (created if missing). Trace files are only written when trace
    /// capture was on and events were retained.
    pub fn dump(&self, dir: &Path, anomaly: &Anomaly) -> Result<PostmortemPaths, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("flight: cannot create {}: {e}", dir.display()))?;

        let doc = PostmortemDoc {
            version: POSTMORTEM_VERSION,
            anomaly: anomaly.clone(),
            config: self.cfg,
            slots: self.ring.iter().map(|(r, _)| *r).collect(),
        };
        let postmortem = dir.join("postmortem.json");
        let json = serde_json::to_string_pretty(&doc)
            .map_err(|e| format!("flight: postmortem encode failed: {e}"))?;
        std::fs::write(&postmortem, json)
            .map_err(|e| format!("flight: cannot write {}: {e}", postmortem.display()))?;

        let mut paths = PostmortemPaths {
            postmortem,
            flight_trace: None,
            replay_trace: None,
        };

        let all = self.trace_events();
        if !all.is_empty() {
            let trace = Trace {
                events: all,
                dropped: 0,
            };
            let p = dir.join("flight_trace.jsonl");
            trace.write(&p)?;
            paths.flight_trace = Some(p);

            let replay = self.replay_events();
            if !replay.is_empty() {
                let trace = Trace {
                    events: replay,
                    dropped: 0,
                };
                let p = dir.join("replay_trace.jsonl");
                trace.write(&p)?;
                paths.replay_trace = Some(p);
            }
        }
        Ok(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(slot: u64, backlog: u64, delivered: u64, slot_ns: u64) -> SlotRecord {
        SlotRecord {
            slot,
            backlogged: 5,
            backlog,
            delivered,
            slot_ns,
            ..Default::default()
        }
    }

    fn cfg() -> FlightConfig {
        FlightConfig {
            capacity: 4,
            stall_factor: 5.0,
            min_stall_ns: 1_000,
            growth_window: 3,
            zero_delivery_window: 4,
            capture_trace: false,
        }
    }

    #[test]
    fn stall_fires_after_warmup_and_latches() {
        let mut fr = FlightRecorder::new(cfg());
        for t in 0..STALL_WARMUP_SLOTS {
            assert!(fr.observe(&rec(t, 3, 1, 1_000), Vec::new(), None).is_none());
        }
        let a = fr
            .observe(&rec(99, 3, 1, 50_000), Vec::new(), None)
            .expect("stall should fire");
        assert_eq!(a.tag(), "slot_stall");
        assert!(fr.fired());
        // Latched: an even bigger stall stays quiet.
        assert!(fr
            .observe(&rec(100, 3, 1, 500_000), Vec::new(), None)
            .is_none());
    }

    #[test]
    fn stall_needs_the_absolute_floor() {
        let mut fr = FlightRecorder::new(FlightConfig {
            min_stall_ns: 1_000_000,
            ..cfg()
        });
        for t in 0..STALL_WARMUP_SLOTS {
            fr.observe(&rec(t, 3, 1, 100), Vec::new(), None);
        }
        // 100× the mean but under the floor: micro-jitter, not a stall.
        assert!(fr
            .observe(&rec(9, 3, 1, 10_000), Vec::new(), None)
            .is_none());
    }

    #[test]
    fn queue_growth_fires_on_a_strict_run_and_resets_on_a_dip() {
        let mut fr = FlightRecorder::new(cfg());
        // Grows twice, dips, then grows three times: fires at the end.
        let backlogs = [10, 11, 12, 9, 10, 11, 12];
        let mut fired = None;
        for (t, &q) in backlogs.iter().enumerate() {
            fired = fr.observe(&rec(t as u64, q, 1, 0), Vec::new(), None);
            if fired.is_some() {
                break;
            }
        }
        match fired.expect("growth should fire") {
            Anomaly::QueueGrowth {
                window,
                backlog_start,
                backlog_end,
                ..
            } => {
                assert_eq!(window, 3);
                assert_eq!(backlog_start, 9);
                assert_eq!(backlog_end, 12);
            }
            other => panic!("wrong anomaly: {other:?}"),
        }
    }

    #[test]
    fn zero_delivery_streak_requires_backlogged_slots() {
        let mut fr = FlightRecorder::new(cfg());
        for t in 0..3 {
            assert!(fr.observe(&rec(t, 5, 0, 0), Vec::new(), None).is_none());
        }
        let a = fr.observe(&rec(3, 5, 0, 0), Vec::new(), None).unwrap();
        assert_eq!(a.tag(), "zero_delivery_streak");
    }

    #[test]
    fn conservation_violation_fires_immediately() {
        let mut fr = FlightRecorder::new(cfg());
        let a = fr
            .observe(&rec(0, 3, 1, 0), Vec::new(), Some((false, 10, 4, 1, 3)))
            .unwrap();
        match a {
            Anomaly::ConservationViolation {
                arrived, queued, ..
            } => {
                assert_eq!(arrived, 10);
                assert_eq!(queued, 3);
            }
            other => panic!("wrong anomaly: {other:?}"),
        }
    }

    #[test]
    fn dump_writes_bundle_with_replayable_last_block() {
        let mut fr = FlightRecorder::new(FlightConfig {
            capture_trace: true,
            ..cfg()
        });
        let block = |slot: u64| {
            vec![
                TraceEvent::SlotStart { slot, backlog: 2 },
                TraceEvent::AlgoStart {
                    scheduler: format!("greedy{slot}"),
                    n: 2,
                    certified: false,
                },
                TraceEvent::Pick { link: 0 },
                TraceEvent::End { scheduled: vec![0] },
                TraceEvent::SlotEnd {
                    slot,
                    links: vec![0],
                },
            ]
        };
        for t in 0..6 {
            fr.observe(&rec(t, 3, 1, 0), block(t), None);
        }
        let dir = std::env::temp_dir().join(format!("obs_flight_{}", std::process::id()));
        let anomaly = Anomaly::ZeroDeliveryStreak { slot: 5, window: 4 };
        let paths = fr.dump(&dir, &anomaly).unwrap();

        let doc = serde_json::parse_node_str(&std::fs::read_to_string(&paths.postmortem).unwrap())
            .unwrap();
        assert_eq!(
            doc.get("version"),
            Some(&serde::Node::U64(u64::from(POSTMORTEM_VERSION)))
        );
        match doc.get("slots") {
            Some(serde::Node::Seq(slots)) => assert_eq!(slots.len(), 4), // ring capacity
            other => panic!("slots not a sequence: {other:?}"),
        }
        let window = doc
            .get("anomaly")
            .and_then(|a| a.get("ZeroDeliveryStreak"))
            .and_then(|a| a.get("window"));
        assert_eq!(window, Some(&serde::Node::U64(4)));

        let flight = Trace::from_jsonl(
            &std::fs::read_to_string(paths.flight_trace.as_ref().unwrap()).unwrap(),
        )
        .unwrap();
        // 4 retained slots × 5 events.
        assert_eq!(flight.events.len(), 20);

        let replay = Trace::from_jsonl(
            &std::fs::read_to_string(paths.replay_trace.as_ref().unwrap()).unwrap(),
        )
        .unwrap();
        // Last slot only, markers stripped.
        assert_eq!(replay.events.len(), 3);
        assert!(replay
            .events
            .iter()
            .all(|e| !matches!(e, TraceEvent::SlotStart { .. } | TraceEvent::SlotEnd { .. })));
        assert!(matches!(
            &replay.events[0],
            TraceEvent::AlgoStart { scheduler, .. } if scheduler == "greedy5"
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
