//! Streaming slot time-series for the online engine.
//!
//! [`SlotSeries`] is a bounded ring-buffered recorder for per-slot
//! [`SlotRecord`]s: the engine pushes one record per slot (at a
//! configurable cadence), the series keeps the last `capacity` records
//! in memory for live views and post-mortems, and — when a writer is
//! attached — appends each record as one JSON line to a `.jsonl`
//! stream. The steady-state path allocates nothing: records are plain
//! `Copy` structs, the ring is pre-reserved, and the JSON line is
//! formatted into a reused `String` scratch buffer.
//!
//! Two emission modes keep the stream useful both as a regression
//! artifact and as a profiling tool:
//!
//! * **deterministic** (default) — only fields derived from the seeded
//!   simulation are written, so the stream is byte-identical across
//!   reruns at a fixed seed;
//! * **timings** — appends the per-phase and whole-slot wall-clock
//!   nanosecond fields (`mutate_ns` … `slot_ns`), which are measured,
//!   not derived, and therefore vary run to run.
//!
//! Field order within a line is fixed (hand-formatted, not map-based),
//! so the schema is stable byte-for-byte, not just structurally.

use serde::Serialize;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// One slot's telemetry: deterministic simulation outcomes plus
/// (optional) measured phase timings. All deterministic fields are
/// exact integers derived from the seeded run; the `*_ns` fields are
/// wall-clock measurements and are zero when timing is disarmed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SlotRecord {
    /// Slot index (0-based).
    pub slot: u64,
    /// Live link population after this slot's arrivals/departures.
    pub population: u64,
    /// Links that joined this slot.
    pub arrivals: u64,
    /// Links that departed this slot.
    pub departures: u64,
    /// Links with a non-empty queue when the scheduler ran.
    pub backlogged: u64,
    /// Links the scheduler picked (its "picks" for this slot).
    pub scheduled: u64,
    /// Backlogged links the scheduler left out (its eliminations).
    pub eliminated: u64,
    /// Packets that arrived this slot.
    pub packets: u64,
    /// Packets delivered this slot.
    pub delivered: u64,
    /// Packets abandoned by departing links this slot.
    pub abandoned: u64,
    /// Total queued packets after service.
    pub backlog: u64,
    /// Wall time building the slot's mutation transaction (departure
    /// scan + arrival sampling).
    pub mutate_ns: u64,
    /// Wall time committing the transaction (`Problem::apply` plus the
    /// receipt-driven state bookkeeping).
    pub commit_ns: u64,
    /// Wall time in the dense `O(N)` bookkeeping walks.
    pub envelope_ns: u64,
    /// Wall time restricting to the backlogged sub-problem.
    pub restrict_ns: u64,
    /// Wall time in the scheduler proper.
    pub schedule_ns: u64,
    /// Wall time realizing the channel and serving queues.
    pub service_ns: u64,
    /// Whole-slot wall time (phases plus record-keeping).
    pub slot_ns: u64,
}

impl SlotRecord {
    /// Sum of the six attributed phase timings.
    pub fn phase_sum_ns(&self) -> u64 {
        self.mutate_ns
            + self.commit_ns
            + self.envelope_ns
            + self.restrict_ns
            + self.schedule_ns
            + self.service_ns
    }

    /// Appends this record as one JSON line (including `\n`) to `out`.
    /// Field order is fixed; `timings` appends the `*_ns` fields.
    fn write_jsonl(&self, out: &mut String, timings: bool) {
        out.push('{');
        let _ = write!(
            out,
            "\"slot\":{},\"population\":{},\"arrivals\":{},\"departures\":{},\
             \"backlogged\":{},\"scheduled\":{},\"eliminated\":{},\"packets\":{},\
             \"delivered\":{},\"abandoned\":{},\"backlog\":{}",
            self.slot,
            self.population,
            self.arrivals,
            self.departures,
            self.backlogged,
            self.scheduled,
            self.eliminated,
            self.packets,
            self.delivered,
            self.abandoned,
            self.backlog,
        );
        if timings {
            let _ = write!(
                out,
                ",\"mutate_ns\":{},\"commit_ns\":{},\"envelope_ns\":{},\
                 \"restrict_ns\":{},\"schedule_ns\":{},\"service_ns\":{},\
                 \"slot_ns\":{}",
                self.mutate_ns,
                self.commit_ns,
                self.envelope_ns,
                self.restrict_ns,
                self.schedule_ns,
                self.service_ns,
                self.slot_ns,
            );
        }
        out.push_str("}\n");
    }
}

/// Configuration for a [`SlotSeries`].
#[derive(Debug, Clone, Copy)]
pub struct SeriesConfig {
    /// In-memory ring capacity (last `capacity` recorded slots kept).
    pub capacity: usize,
    /// Record every `cadence`-th slot (1 = every slot).
    pub cadence: u64,
    /// Include the measured `*_ns` fields in the JSONL stream. The
    /// in-memory ring always keeps them.
    pub timings: bool,
}

impl Default for SeriesConfig {
    fn default() -> Self {
        Self {
            capacity: 1024,
            cadence: 1,
            timings: false,
        }
    }
}

/// Bounded ring-buffered slot-series recorder with an optional JSONL
/// stream. See the module docs for the allocation and determinism
/// contract.
pub struct SlotSeries {
    cfg: SeriesConfig,
    ring: VecDeque<SlotRecord>,
    writer: Option<BufWriter<File>>,
    scratch: String,
    recorded: u64,
}

impl SlotSeries {
    /// An in-memory series (ring only, nothing written to disk).
    pub fn in_memory(cfg: SeriesConfig) -> Self {
        let capacity = cfg.capacity.max(1);
        Self {
            cfg: SeriesConfig { capacity, ..cfg },
            ring: VecDeque::with_capacity(capacity),
            writer: None,
            scratch: String::with_capacity(512),
            recorded: 0,
        }
    }

    /// A series streaming to `path` (created/truncated) as JSONL.
    pub fn to_path(cfg: SeriesConfig, path: &Path) -> Result<Self, String> {
        let file = File::create(path)
            .map_err(|e| format!("series: cannot create {}: {e}", path.display()))?;
        let mut s = Self::in_memory(cfg);
        s.writer = Some(BufWriter::new(file));
        Ok(s)
    }

    /// The active configuration.
    pub fn config(&self) -> &SeriesConfig {
        &self.cfg
    }

    /// Whether slot `slot` falls on this series' cadence.
    #[inline]
    pub fn due(&self, slot: u64) -> bool {
        slot.is_multiple_of(self.cfg.cadence.max(1))
    }

    /// Records one slot (no-op when `slot` is off-cadence). Allocates
    /// nothing once the ring and scratch buffer are warm.
    pub fn record(&mut self, rec: &SlotRecord) {
        if !self.due(rec.slot) {
            return;
        }
        if self.ring.len() == self.cfg.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(*rec);
        self.recorded += 1;
        if let Some(w) = self.writer.as_mut() {
            self.scratch.clear();
            rec.write_jsonl(&mut self.scratch, self.cfg.timings);
            let _ = w.write_all(self.scratch.as_bytes());
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &SlotRecord> {
        self.ring.iter()
    }

    /// The most recent retained record.
    pub fn last(&self) -> Option<&SlotRecord> {
        self.ring.back()
    }

    /// Total records accepted (including ones evicted from the ring).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Flushes the JSONL stream (if any) to disk.
    pub fn flush(&mut self) -> Result<(), String> {
        if let Some(w) = self.writer.as_mut() {
            w.flush()
                .map_err(|e| format!("series: flush failed: {e}"))?;
        }
        Ok(())
    }

    /// Renders one record exactly as the stream would (for tests).
    pub fn render_line(rec: &SlotRecord, timings: bool) -> String {
        let mut s = String::new();
        rec.write_jsonl(&mut s, timings);
        s
    }
}

impl Drop for SlotSeries {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(slot: u64) -> SlotRecord {
        SlotRecord {
            slot,
            population: 40,
            arrivals: 2,
            departures: 1,
            backlogged: 12,
            scheduled: 8,
            eliminated: 4,
            packets: 9,
            delivered: 7,
            abandoned: 0,
            backlog: 31,
            mutate_ns: 100,
            commit_ns: 150,
            envelope_ns: 200,
            restrict_ns: 300,
            schedule_ns: 400,
            service_ns: 500,
            slot_ns: 1700,
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_tail() {
        let mut s = SlotSeries::in_memory(SeriesConfig {
            capacity: 3,
            ..Default::default()
        });
        for t in 0..10 {
            s.record(&rec(t));
        }
        let kept: Vec<u64> = s.records().map(|r| r.slot).collect();
        assert_eq!(kept, vec![7, 8, 9]);
        assert_eq!(s.recorded(), 10);
        assert_eq!(s.last().unwrap().slot, 9);
    }

    #[test]
    fn cadence_skips_off_cycle_slots() {
        let mut s = SlotSeries::in_memory(SeriesConfig {
            cadence: 4,
            ..Default::default()
        });
        for t in 0..10 {
            s.record(&rec(t));
        }
        let kept: Vec<u64> = s.records().map(|r| r.slot).collect();
        assert_eq!(kept, vec![0, 4, 8]);
    }

    #[test]
    fn deterministic_line_omits_timing_fields() {
        let line = SlotSeries::render_line(&rec(3), false);
        assert_eq!(
            line,
            "{\"slot\":3,\"population\":40,\"arrivals\":2,\"departures\":1,\
             \"backlogged\":12,\"scheduled\":8,\"eliminated\":4,\"packets\":9,\
             \"delivered\":7,\"abandoned\":0,\"backlog\":31}\n"
        );
        assert!(!line.contains("_ns"));
    }

    #[test]
    fn timing_line_appends_ns_fields_and_stays_valid_json() {
        let line = SlotSeries::render_line(&rec(3), true);
        assert!(line.contains("\"mutate_ns\":100"));
        assert!(line.contains("\"commit_ns\":150"));
        assert!(line.contains("\"slot_ns\":1700"));
        let v = serde_json::parse_node_str(line.trim()).unwrap();
        assert_eq!(v.get("slot"), Some(&serde::Node::U64(3)));
        assert_eq!(v.get("commit_ns"), Some(&serde::Node::U64(150)));
        assert_eq!(v.get("service_ns"), Some(&serde::Node::U64(500)));
    }

    #[test]
    fn stream_writes_one_line_per_on_cadence_slot() {
        let dir = std::env::temp_dir().join(format!("obs_series_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.jsonl");
        let mut s = SlotSeries::to_path(
            SeriesConfig {
                cadence: 2,
                ..Default::default()
            },
            &path,
        )
        .unwrap();
        for t in 0..6 {
            s.record(&rec(t));
        }
        s.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().all(|l| l.starts_with("{\"slot\":")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn phase_sum_adds_the_six_phases() {
        assert_eq!(rec(0).phase_sum_ns(), 1650);
    }
}
