//! Lightweight observability for the fading-rls workspace.
//!
//! Four small, dependency-free pieces (only the vendored `serde` /
//! `serde_json` are used, for output encoding):
//!
//! * **Metrics** ([`metrics`]) — a global registry of named counters,
//!   gauges, and fixed-bucket histograms. Counters are sharded across
//!   cache-line-padded atomics indexed by thread, so a hot-loop
//!   increment is one relaxed atomic op with no cross-thread
//!   contention; shards are merged when a [`MetricsSnapshot`] is taken.
//!   Metric names follow `<crate>.<component>.<metric>`
//!   (e.g. `core.rle.eliminations`, `sim.mc.trials`).
//! * **Spans** ([`span`]) — RAII wall-clock timers. `span!("name")`
//!   returns a guard; nested guards on the same thread build a
//!   hierarchical timing tree keyed by dotted paths, summarized by
//!   [`span_snapshot`].
//! * **Events & manifests** ([`events`], [`manifest`]) — an optional
//!   JSONL sink for structured events, and a [`RunManifest`] capturing
//!   one run's configuration, seed, git version, build profile, wall
//!   time, metric snapshot, and span tree as a single JSON document.
//! * **Progress** ([`progress`]) — a throttled stderr reporter for
//!   long sweeps (`point 3/12 · scheduler=RLE · 48k trials/s ·
//!   ETA 00:41`), globally switched by [`set_progress`] so library
//!   code can report unconditionally and stay silent by default.
//! * **Decision traces** ([`trace`]) — typed, replayable records of
//!   scheduler decisions (`Pick`, `Eliminate {cause}`, `BudgetDebit`,
//!   `ClassColorChosen`), ring-buffered and zero-cost when disabled;
//!   [`hash`] fingerprints the resulting artifacts for the manifest.
//! * **Slot time-series** ([`timeseries`]) — a bounded ring-buffered
//!   per-slot recorder for the online engine, streamed to JSONL with
//!   zero steady-state allocation (deterministic by default, measured
//!   phase timings opt-in).
//! * **Flight recorder** ([`flight`]) — a black box retaining the
//!   last K slot records plus their trace events, with an anomaly
//!   detector (stall / queue growth / conservation / zero delivery)
//!   that dumps a replayable post-mortem bundle when it fires.
//! * **Exposition** ([`exposition`]) — a Prometheus-text-format
//!   renderer for [`MetricsSnapshot`] (`--prom-out`).
//!
//! Everything is safe to call from `rayon` worker threads. The
//! registry is process-global: snapshots taken while writers are
//! active are internally consistent per metric but not a cross-metric
//! barrier.

pub mod events;
pub mod exposition;
pub mod flight;
pub mod hash;
pub mod manifest;
pub mod metrics;
pub mod progress;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use events::{emit_event, set_event_sink, EventValue};
pub use exposition::render_prometheus;
pub use flight::{
    Anomaly, AnomalyDetector, FlightConfig, FlightRecorder, PostmortemPaths, POSTMORTEM_VERSION,
};
pub use hash::{sha256, sha256_hex};
pub use manifest::{Artifact, ManifestBuilder, RunManifest};
pub use metrics::{
    counter, gauge, histogram, reset_metrics, snapshot, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricsSnapshot,
};
pub use progress::{progress_enabled, set_progress, Progress};
pub use span::{reset_spans, span_snapshot, Span, SpanNode};
pub use timeseries::{SeriesConfig, SlotRecord, SlotSeries};
pub use trace::{
    set_trace_capacity, set_tracing, take_trace, tracing_enabled, ElimCause, Trace, TraceEvent,
    TraceScope,
};

/// Returns a `&'static Counter` for `$name`, resolving the registry
/// lookup once per call site. The hot path after initialization is a
/// single atomic load plus one relaxed `fetch_add`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __COUNTER: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        __COUNTER.get_or_init(|| $crate::counter($name))
    }};
}

/// Opens a timing span; bind the result to keep it alive:
/// `let _span = obs::span!("ldp.partition");`. Dots in the name create
/// levels in the reported tree, as does lexical nesting of guards.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
}
