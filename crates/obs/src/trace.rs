//! Decision traces: typed, replayable records of scheduler decisions.
//!
//! The paper's linearization (Thm 3.1 / Cor. 3.1) reduces feasibility
//! to a per-receiver budget — link `j` survives iff
//! `Σ_{i∈P\{j}} f_{i,j} ≤ γ_ε` — so every scheduling decision is either
//! a *pick*, an *elimination with a cause*, or a *budget debit* against
//! some receiver's ledger. This module gives those decisions a typed,
//! serializable form:
//!
//! * schedulers emit [`TraceEvent`]s through a [`TraceScope`] (local
//!   buffer, published as one contiguous block per `schedule()` call so
//!   parallel invocations never interleave);
//! * a global ring buffer collects blocks when tracing is enabled
//!   ([`set_tracing`]) and is drained with [`take_trace`];
//! * a [`Trace`] round-trips losslessly through JSONL (`serde_json`
//!   prints `f64` in shortest-round-trip form, so replayed ledgers are
//!   bit-exact).
//!
//! Records deliberately carry **no clocks**: the same seed must yield a
//! byte-identical trace. When tracing is disabled (the default) every
//! hook is one relaxed atomic load.
//!
//! The replay verifier that turns a trace into a checked *certificate*
//! of the run lives in `fading-core::certify` (it needs the `Problem`);
//! see `docs/tracing.md` for the record schema and soundness argument.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Why a link was removed from consideration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElimCause {
    /// Sender inside the deletion disk `c₁·d_ii` of a picked receiver
    /// (Algorithm 2, line 4).
    Radius,
    /// Accumulated interference from picked senders exceeded the
    /// reserved budget `c₂·γ_ε` (Algorithm 2, line 5).
    BudgetExceeded,
    /// Grid schedulers: the link is in the winning class but lost its
    /// square (to a better receiver) or sits in a square of a
    /// non-winning color (Algorithm 1's 4-coloring).
    ColorConflict,
    /// Grid schedulers: the link is not in the winning length class.
    ClassFiltered,
}

/// One scheduler decision record.
///
/// A *block* is the record sequence of one `schedule()` call: a start
/// record, the decision sequence, and an `End` record naming the
/// emitted schedule. Multi-slot drivers wrap blocks in
/// `SlotStart`/`SlotEnd` markers carrying parent link ids (the block
/// between them uses the residual sub-problem's renumbered ids).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// An elimination scheduler (RLE, ApproxDiversity) begins.
    /// `metric` is `"fading"` (budget `γ_ε`) or `"deterministic"`
    /// (budget 1); `threshold = c2 × budget`.
    ElimStart {
        scheduler: String,
        n: u32,
        metric: String,
        budget: f64,
        threshold: f64,
        c1: f64,
        c2: f64,
    },
    /// A grid scheduler (LDP, ApproxLogN) begins. `certified` means
    /// the algorithm guarantees its output meets the `γ_ε` budget
    /// (true for LDP via Theorem 4.1, false for the deterministic
    /// baseline).
    GridStart {
        scheduler: String,
        n: u32,
        scale: f64,
        nested: bool,
        certified: bool,
    },
    /// Any other scheduler begins (membership-only trace). `certified`
    /// as in `GridStart`.
    AlgoStart {
        scheduler: String,
        n: u32,
        certified: bool,
    },
    /// The link joined the schedule.
    Pick { link: u32 },
    /// The link left consideration; `by` is the pick that caused it
    /// (elimination schedulers; grid cell losers name the cell winner).
    Eliminate {
        link: u32,
        cause: ElimCause,
        by: Option<u32>,
    },
    /// Pick `from` debited `factor` from `receiver`'s interference
    /// ledger, leaving `remaining` of the threshold.
    BudgetDebit {
        receiver: u32,
        from: u32,
        factor: f64,
        remaining: f64,
    },
    /// Grid schedulers: the winning (length class, square color) pair
    /// and its utility.
    ClassColorChosen {
        class: u32,
        color: u32,
        utility: f64,
    },
    /// A multi-slot / queueing driver starts slot `slot` with
    /// `backlog` links still to serve.
    SlotStart { slot: u64, backlog: u32 },
    /// Slot `slot` committed `links` (parent-numbered ids).
    SlotEnd { slot: u64, links: Vec<u32> },
    /// The block's emitted schedule (sorted link ids).
    End { scheduled: Vec<u32> },
    /// Written first when the ring buffer overflowed and dropped the
    /// oldest `dropped` records; such a trace is not replayable.
    TruncatedHead { dropped: u64 },
}

/// Default ring capacity (records). A record is a few dozen bytes, so
/// this bounds the buffer around ~100 MB worst case.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

static ENABLED: AtomicBool = AtomicBool::new(false);

struct TraceBuf {
    events: VecDeque<TraceEvent>,
    dropped: u64,
    capacity: usize,
}

fn buf() -> &'static Mutex<TraceBuf> {
    static BUF: OnceLock<Mutex<TraceBuf>> = OnceLock::new();
    BUF.get_or_init(|| {
        Mutex::new(TraceBuf {
            events: VecDeque::new(),
            dropped: 0,
            capacity: DEFAULT_TRACE_CAPACITY,
        })
    })
}

/// Globally enables or disables trace collection. Disabled is the
/// default; every instrumentation site then costs one relaxed load.
pub fn set_tracing(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether trace collection is currently enabled.
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Caps the ring buffer at `capacity` records (oldest records are
/// dropped past it, marking the trace truncated).
pub fn set_trace_capacity(capacity: usize) {
    assert!(capacity > 0, "trace capacity must be positive");
    let mut b = buf().lock().unwrap();
    b.capacity = capacity;
    while b.events.len() > capacity {
        b.events.pop_front();
        b.dropped += 1;
    }
}

/// Appends one block of records atomically (no interleaving with other
/// threads' blocks). No-op when the block is empty.
pub fn publish(block: Vec<TraceEvent>) {
    if block.is_empty() {
        return;
    }
    let mut b = buf().lock().unwrap();
    b.events.extend(block);
    while b.events.len() > b.capacity {
        b.events.pop_front();
        b.dropped += 1;
    }
}

/// Like [`publish`], but drains `block` in place instead of consuming
/// it, so a caller-owned scratch buffer keeps its capacity across
/// schedule calls (the zero-allocation engine's trace path reuses one
/// buffer per scheduling context — see `docs/engine.md`).
pub fn publish_from(block: &mut Vec<TraceEvent>) {
    if block.is_empty() {
        return;
    }
    let mut b = buf().lock().unwrap();
    b.events.extend(block.drain(..));
    while b.events.len() > b.capacity {
        b.events.pop_front();
        b.dropped += 1;
    }
}

/// Whether the ring already holds `capacity` records. Once saturated,
/// publishing only evicts older records and the trace is no longer
/// replayable, so emitters may skip building blocks entirely.
pub fn ring_saturated() -> bool {
    let b = buf().lock().unwrap();
    b.events.len() >= b.capacity
}

/// Drains every collected record (and the overflow count), resetting
/// the buffer.
pub fn take_trace() -> Trace {
    let mut b = buf().lock().unwrap();
    Trace {
        events: b.events.drain(..).collect(),
        dropped: std::mem::take(&mut b.dropped),
    }
}

/// A per-`schedule()` record buffer. Checks the global gate once at
/// construction; when inactive, every [`push`](Self::push) is a no-op
/// so hot loops only pay for the (predictable) `active()` branch.
pub struct TraceScope {
    events: Vec<TraceEvent>,
    active: bool,
}

impl TraceScope {
    /// Opens a scope; captures whether tracing is on right now.
    pub fn begin() -> Self {
        Self {
            events: Vec::new(),
            active: tracing_enabled(),
        }
    }

    /// Whether this scope records anything. Guard event construction
    /// with this in hot loops.
    #[inline]
    pub fn active(&self) -> bool {
        self.active
    }

    /// Records one event (no-op when inactive).
    #[inline]
    pub fn push(&mut self, event: TraceEvent) {
        if self.active {
            self.events.push(event);
        }
    }

    /// Publishes the buffered block to the global ring.
    pub fn finish(self) {
        if self.active {
            publish(self.events);
        }
    }
}

/// A drained decision trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// The collected records, in publish order.
    pub events: Vec<TraceEvent>,
    /// Records lost to ring overflow (0 ⇒ the trace is complete and
    /// replayable).
    pub dropped: u64,
}

impl Trace {
    /// Whether no records were lost to ring overflow.
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }

    /// JSONL form: one JSON object per line, preceded by a
    /// `TruncatedHead` line when records were dropped. `f64`s are
    /// printed in shortest-round-trip form, so parsing the output
    /// reproduces the exact values.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(
                &serde_json::to_string(&TraceEvent::TruncatedHead {
                    dropped: self.dropped,
                })
                .unwrap_or_default(),
            );
            out.push('\n');
        }
        for e in &self.events {
            out.push_str(&serde_json::to_string(e).unwrap_or_default());
            out.push('\n');
        }
        out
    }

    /// Parses [`to_jsonl`](Self::to_jsonl) output (blank lines are
    /// skipped; a leading `TruncatedHead` populates `dropped`).
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let event: TraceEvent =
                serde_json::from_str(line).map_err(|e| format!("trace line {}: {e}", i + 1))?;
            if let TraceEvent::TruncatedHead { dropped: d } = event {
                dropped += d;
            } else {
                events.push(event);
            }
        }
        Ok(Self { events, dropped })
    }

    /// Writes the JSONL form to `path`.
    pub fn write(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_jsonl())
            .map_err(|e| format!("cannot write trace {}: {e}", path.display()))
    }

    /// Splits the record stream into scheduler blocks: each slice
    /// starts at a `*Start` record and runs to just before the next
    /// one. Slot markers between blocks ride along in the preceding
    /// block's tail (replay ignores them).
    pub fn blocks(&self) -> Vec<&[TraceEvent]> {
        let starts: Vec<usize> = self
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                matches!(
                    e,
                    TraceEvent::ElimStart { .. }
                        | TraceEvent::GridStart { .. }
                        | TraceEvent::AlgoStart { .. }
                )
            })
            .map(|(i, _)| i)
            .collect();
        starts
            .iter()
            .enumerate()
            .map(|(k, &s)| {
                let end = starts.get(k + 1).copied().unwrap_or(self.events.len());
                &self.events[s..end]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this module toggle the global gate and drain the global
    /// ring; serialize them so parallel test threads don't interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    // Full 17-digit literals: the fixture pins exact f64 round-trips.
    #[allow(clippy::excessive_precision)]
    fn sample_block() -> Vec<TraceEvent> {
        vec![
            TraceEvent::ElimStart {
                scheduler: "RLE".into(),
                n: 3,
                metric: "fading".into(),
                budget: 0.010050335853501441,
                threshold: 0.005025167926750721,
                c1: 23.5,
                c2: 0.5,
            },
            TraceEvent::Pick { link: 1 },
            TraceEvent::BudgetDebit {
                receiver: 0,
                from: 1,
                factor: 0.0031,
                remaining: 0.0019251679267507207,
            },
            TraceEvent::Eliminate {
                link: 2,
                cause: ElimCause::Radius,
                by: Some(1),
            },
            TraceEvent::Eliminate {
                link: 0,
                cause: ElimCause::BudgetExceeded,
                by: Some(1),
            },
            TraceEvent::End { scheduled: vec![1] },
        ]
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let trace = Trace {
            events: sample_block(),
            dropped: 0,
        };
        let text = trace.to_jsonl();
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back, trace);
        // Shortest-round-trip floats: re-serializing is byte-identical.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn disabled_scope_records_nothing() {
        let _guard = lock();
        set_tracing(false);
        take_trace();
        let mut scope = TraceScope::begin();
        assert!(!scope.active());
        scope.push(TraceEvent::Pick { link: 0 });
        scope.finish();
        assert!(take_trace().events.is_empty());
    }

    #[test]
    fn enabled_scope_publishes_one_block() {
        let _guard = lock();
        set_tracing(true);
        take_trace();
        let mut scope = TraceScope::begin();
        assert!(scope.active());
        for e in sample_block() {
            scope.push(e);
        }
        scope.finish();
        set_tracing(false);
        let trace = take_trace();
        assert_eq!(trace.events, sample_block());
        assert!(trace.is_complete());
        assert_eq!(trace.blocks().len(), 1);
    }

    #[test]
    fn ring_overflow_marks_the_trace_truncated() {
        let _guard = lock();
        set_tracing(true);
        take_trace();
        set_trace_capacity(4);
        publish(sample_block()); // 6 records into a 4-slot ring
        set_trace_capacity(DEFAULT_TRACE_CAPACITY);
        set_tracing(false);
        let trace = take_trace();
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.dropped, 2);
        assert!(!trace.is_complete());
        // The truncation survives the JSONL round trip.
        let back = Trace::from_jsonl(&trace.to_jsonl()).unwrap();
        assert_eq!(back.dropped, 2);
    }

    #[test]
    fn blocks_split_on_start_records() {
        let mut events = sample_block();
        events.push(TraceEvent::SlotEnd {
            slot: 0,
            links: vec![1],
        });
        events.extend(sample_block());
        let trace = Trace { events, dropped: 0 };
        let blocks = trace.blocks();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].len(), sample_block().len() + 1);
        assert_eq!(blocks[1].len(), sample_block().len());
        assert!(matches!(blocks[1][0], TraceEvent::ElimStart { .. }));
    }

    #[test]
    fn cause_taxonomy_serializes_as_plain_strings() {
        let line = serde_json::to_string(&TraceEvent::Eliminate {
            link: 7,
            cause: ElimCause::ClassFiltered,
            by: None,
        })
        .unwrap();
        assert!(line.contains("\"ClassFiltered\""), "{line}");
        assert!(line.contains("null"), "{line}");
        let back: TraceEvent = serde_json::from_str(&line).unwrap();
        assert!(matches!(
            back,
            TraceEvent::Eliminate {
                link: 7,
                cause: ElimCause::ClassFiltered,
                by: None
            }
        ));
    }
}
