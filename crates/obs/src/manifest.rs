//! Per-run manifests: one JSON document summarizing a run.
//!
//! A [`RunManifest`] records what was run (name, config, seed), in
//! which build (git describe, profile), how long it took, and what the
//! observability layer saw (metric snapshot, span tree). Figure
//! binaries and the CLI write one per run when `--metrics-out` is
//! given, so results stay auditable after the fact.

use crate::metrics::MetricsSnapshot;
use crate::span::SpanNode;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

/// The schema version written into every manifest, bumped on
/// incompatible changes (see `docs/observability.md`).
/// Version 2 added `artifacts`; version 3 added derived p50/p95/p99
/// quantiles to every histogram snapshot. Older manifests still
/// deserialize (missing quantiles are recomputed from bucket counts).
pub const MANIFEST_VERSION: u64 = 3;

/// A file the run produced, pinned by content hash so results and
/// their traces stay linkable after the fact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Artifact {
    /// What the file is: `"trace"`, `"schedule"`, `"csv"`, ….
    pub kind: String,
    /// Where it was written.
    pub path: String,
    /// SHA-256 of the file contents (hex), or `"unavailable"` if the
    /// file could not be read back at manifest time.
    pub sha256: String,
}

/// A complete description of one finished run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunManifest {
    /// Schema version ([`MANIFEST_VERSION`]).
    pub version: u64,
    /// Run name (figure binary or CLI subcommand).
    pub name: String,
    /// `git describe --always --dirty` at run time, or "unknown".
    pub git_describe: String,
    /// "release" or "debug".
    pub build_profile: String,
    /// The run's base RNG seed.
    pub seed: u64,
    /// Flat key/value configuration (flags, sweep parameters).
    pub config: BTreeMap<String, String>,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_time_ms: u64,
    /// Merged metric registry state at the end of the run.
    pub metrics: MetricsSnapshot,
    /// Hierarchical span timings.
    pub spans: Vec<SpanNode>,
    /// Files the run produced (decision traces, schedules), with
    /// content hashes. Empty in version-1 manifests.
    pub artifacts: Vec<Artifact>,
}

// The vendored serde derive requires every named field to be present;
// this manual impl instead defaults `artifacts` (added in version 2)
// to empty, so version-1 manifests still load.
impl Deserialize for RunManifest {
    fn deserialize_node(node: &serde::Node) -> Result<Self, serde::DeError> {
        fn field<T: Deserialize>(node: &serde::Node, name: &str) -> Result<T, serde::DeError> {
            Deserialize::deserialize_node(
                node.get(name)
                    .ok_or_else(|| serde::DeError(format!("missing field `{name}`")))?,
            )
        }
        if !matches!(node, serde::Node::Map(_)) {
            return Err(serde::DeError(
                "invalid type: expected a map for struct RunManifest".to_string(),
            ));
        }
        Ok(Self {
            version: field(node, "version")?,
            name: field(node, "name")?,
            git_describe: field(node, "git_describe")?,
            build_profile: field(node, "build_profile")?,
            seed: field(node, "seed")?,
            config: field(node, "config")?,
            wall_time_ms: field(node, "wall_time_ms")?,
            metrics: field(node, "metrics")?,
            spans: field(node, "spans")?,
            artifacts: match node.get("artifacts") {
                None => Vec::new(),
                Some(n) => Deserialize::deserialize_node(n)?,
            },
        })
    }
}

impl RunManifest {
    /// Pretty-printed JSON form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Writes the JSON form to `path`.
    pub fn write(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json())
            .map_err(|e| format!("cannot write manifest {}: {e}", path.display()))
    }
}

/// Accumulates run context, then captures the observability state.
pub struct ManifestBuilder {
    name: String,
    seed: u64,
    config: BTreeMap<String, String>,
    artifacts: Vec<Artifact>,
    start: Instant,
}

impl ManifestBuilder {
    /// Starts the run clock now.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            seed: 0,
            config: BTreeMap::new(),
            artifacts: Vec::new(),
            start: Instant::now(),
        }
    }

    /// Backdates the run clock (e.g. to process start).
    pub fn started_at(mut self, start: Instant) -> Self {
        self.start = start;
        self
    }

    /// Records the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Records one configuration key/value pair.
    pub fn config_kv(mut self, key: &str, value: impl ToString) -> Self {
        self.config.insert(key.to_string(), value.to_string());
        self
    }

    /// Records a produced file, hashing its current contents.
    pub fn artifact(mut self, kind: &str, path: &Path) -> Self {
        let sha256 = std::fs::read(path)
            .map(|bytes| crate::hash::sha256_hex(&bytes))
            .unwrap_or_else(|_| "unavailable".to_string());
        self.artifacts.push(Artifact {
            kind: kind.to_string(),
            path: path.display().to_string(),
            sha256,
        });
        self
    }

    /// Stops the clock and snapshots metrics, spans, git, and profile.
    pub fn finish(self) -> RunManifest {
        RunManifest {
            version: MANIFEST_VERSION,
            name: self.name,
            git_describe: git_describe(),
            build_profile: if cfg!(debug_assertions) {
                "debug".to_string()
            } else {
                "release".to_string()
            },
            seed: self.seed,
            config: self.config,
            wall_time_ms: self.start.elapsed().as_millis() as u64,
            metrics: crate::metrics::snapshot(),
            spans: crate::span::span_snapshot(),
            artifacts: self.artifacts,
        }
    }
}

fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;

    /// A fully deterministic manifest (no clocks, no git) used by the
    /// golden-file test.
    pub(super) fn fixture() -> RunManifest {
        let mut counters = BTreeMap::new();
        counters.insert("core.rle.eliminations".to_string(), 96u64);
        counters.insert("sim.mc.trials".to_string(), 10_000u64);
        let mut gauges = BTreeMap::new();
        gauges.insert("sim.runner.threads".to_string(), 1.0);
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "sim.runner.point_ms".to_string(),
            // 4 observations, 1 in overflow: p50 lands in bucket 100,
            // p95/p99 in overflow (no finite bound -> None).
            HistogramSnapshot::from_buckets(vec![10.0, 100.0, 1000.0], vec![1, 2, 0], 1, 4, 1234.5),
        );
        let mut config = BTreeMap::new();
        config.insert("alpha".to_string(), "3".to_string());
        config.insert("quick".to_string(), "false".to_string());
        RunManifest {
            version: MANIFEST_VERSION,
            name: "fig5a".to_string(),
            git_describe: "deadbee".to_string(),
            build_profile: "release".to_string(),
            seed: 2017,
            config,
            wall_time_ms: 41_250,
            metrics: MetricsSnapshot {
                counters,
                gauges,
                histograms,
            },
            spans: vec![SpanNode {
                name: "scheduler".to_string(),
                calls: 48,
                total_ns: 1_200_000,
                children: vec![SpanNode {
                    name: "partition".to_string(),
                    calls: 48,
                    total_ns: 900_000,
                    children: vec![],
                }],
            }],
            artifacts: vec![Artifact {
                kind: "trace".to_string(),
                path: "results/fig5a_trace.jsonl".to_string(),
                sha256: "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
                    .to_string(),
            }],
        }
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = fixture();
        let json = m.to_json();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_matches_golden_file() {
        // The golden file pins the on-disk schema; regenerate it
        // deliberately (and bump MANIFEST_VERSION) on schema changes
        // with `OBS_REGEN_GOLDEN=1 cargo test -p fading-obs golden`.
        if std::env::var_os("OBS_REGEN_GOLDEN").is_some() {
            std::fs::write(
                concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_manifest.json"),
                fixture().to_json(),
            )
            .unwrap();
        }
        let golden = include_str!("../tests/golden_manifest.json");
        let parsed: RunManifest = serde_json::from_str(golden).unwrap();
        assert_eq!(parsed, fixture());
        assert_eq!(fixture().to_json().trim(), golden.trim());
    }

    #[test]
    fn version_1_manifests_without_artifacts_still_deserialize() {
        let mut v1 = fixture();
        v1.version = 1;
        v1.artifacts.clear();
        // A version-1 document has no `artifacts` key at all.
        let json = v1.to_json().replace(",\n  \"artifacts\": []", "");
        assert!(!json.contains("artifacts"), "{json}");
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v1);
    }

    #[test]
    fn builder_records_and_hashes_artifacts() {
        let path = std::env::temp_dir().join("fading_obs_artifact_test.jsonl");
        std::fs::write(&path, b"abc").unwrap();
        let m = ManifestBuilder::new("unit")
            .artifact("trace", &path)
            .artifact("missing", Path::new("/nonexistent/file"))
            .finish();
        assert_eq!(m.artifacts.len(), 2);
        assert_eq!(m.artifacts[0].kind, "trace");
        assert_eq!(
            m.artifacts[0].sha256,
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(m.artifacts[1].sha256, "unavailable");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn builder_captures_context_and_live_state() {
        crate::counter("obs.test.manifest_counter").add(7);
        let m = ManifestBuilder::new("unit")
            .seed(42)
            .config_kv("trials", 1000)
            .finish();
        assert_eq!(m.version, MANIFEST_VERSION);
        assert_eq!(m.name, "unit");
        assert_eq!(m.seed, 42);
        assert_eq!(m.config["trials"], "1000");
        assert!(m.metrics.counters["obs.test.manifest_counter"] >= 7);
        assert!(m.build_profile == "debug" || m.build_profile == "release");
        assert!(!m.git_describe.is_empty());
    }

    #[test]
    fn write_creates_parseable_json() {
        let path = std::env::temp_dir().join("fading_obs_manifest_test.json");
        fixture().write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: RunManifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, fixture());
        let _ = std::fs::remove_file(&path);
    }
}
