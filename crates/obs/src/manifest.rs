//! Per-run manifests: one JSON document summarizing a run.
//!
//! A [`RunManifest`] records what was run (name, config, seed), in
//! which build (git describe, profile), how long it took, and what the
//! observability layer saw (metric snapshot, span tree). Figure
//! binaries and the CLI write one per run when `--metrics-out` is
//! given, so results stay auditable after the fact.

use crate::metrics::MetricsSnapshot;
use crate::span::SpanNode;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

/// The schema version written into every manifest, bumped on
/// incompatible changes (see `docs/observability.md`).
pub const MANIFEST_VERSION: u64 = 1;

/// A complete description of one finished run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Schema version ([`MANIFEST_VERSION`]).
    pub version: u64,
    /// Run name (figure binary or CLI subcommand).
    pub name: String,
    /// `git describe --always --dirty` at run time, or "unknown".
    pub git_describe: String,
    /// "release" or "debug".
    pub build_profile: String,
    /// The run's base RNG seed.
    pub seed: u64,
    /// Flat key/value configuration (flags, sweep parameters).
    pub config: BTreeMap<String, String>,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_time_ms: u64,
    /// Merged metric registry state at the end of the run.
    pub metrics: MetricsSnapshot,
    /// Hierarchical span timings.
    pub spans: Vec<SpanNode>,
}

impl RunManifest {
    /// Pretty-printed JSON form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Writes the JSON form to `path`.
    pub fn write(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json())
            .map_err(|e| format!("cannot write manifest {}: {e}", path.display()))
    }
}

/// Accumulates run context, then captures the observability state.
pub struct ManifestBuilder {
    name: String,
    seed: u64,
    config: BTreeMap<String, String>,
    start: Instant,
}

impl ManifestBuilder {
    /// Starts the run clock now.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            seed: 0,
            config: BTreeMap::new(),
            start: Instant::now(),
        }
    }

    /// Backdates the run clock (e.g. to process start).
    pub fn started_at(mut self, start: Instant) -> Self {
        self.start = start;
        self
    }

    /// Records the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Records one configuration key/value pair.
    pub fn config_kv(mut self, key: &str, value: impl ToString) -> Self {
        self.config.insert(key.to_string(), value.to_string());
        self
    }

    /// Stops the clock and snapshots metrics, spans, git, and profile.
    pub fn finish(self) -> RunManifest {
        RunManifest {
            version: MANIFEST_VERSION,
            name: self.name,
            git_describe: git_describe(),
            build_profile: if cfg!(debug_assertions) {
                "debug".to_string()
            } else {
                "release".to_string()
            },
            seed: self.seed,
            config: self.config,
            wall_time_ms: self.start.elapsed().as_millis() as u64,
            metrics: crate::metrics::snapshot(),
            spans: crate::span::span_snapshot(),
        }
    }
}

fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;

    /// A fully deterministic manifest (no clocks, no git) used by the
    /// golden-file test.
    pub(super) fn fixture() -> RunManifest {
        let mut counters = BTreeMap::new();
        counters.insert("core.rle.eliminations".to_string(), 96u64);
        counters.insert("sim.mc.trials".to_string(), 10_000u64);
        let mut gauges = BTreeMap::new();
        gauges.insert("sim.runner.threads".to_string(), 1.0);
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "sim.runner.point_ms".to_string(),
            HistogramSnapshot {
                bounds: vec![10.0, 100.0, 1000.0],
                counts: vec![1, 2, 0],
                overflow: 1,
                count: 4,
                sum: 1234.5,
            },
        );
        let mut config = BTreeMap::new();
        config.insert("alpha".to_string(), "3".to_string());
        config.insert("quick".to_string(), "false".to_string());
        RunManifest {
            version: MANIFEST_VERSION,
            name: "fig5a".to_string(),
            git_describe: "deadbee".to_string(),
            build_profile: "release".to_string(),
            seed: 2017,
            config,
            wall_time_ms: 41_250,
            metrics: MetricsSnapshot {
                counters,
                gauges,
                histograms,
            },
            spans: vec![SpanNode {
                name: "scheduler".to_string(),
                calls: 48,
                total_ns: 1_200_000,
                children: vec![SpanNode {
                    name: "partition".to_string(),
                    calls: 48,
                    total_ns: 900_000,
                    children: vec![],
                }],
            }],
        }
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = fixture();
        let json = m.to_json();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_matches_golden_file() {
        // The golden file pins the on-disk schema; regenerate it
        // deliberately (and bump MANIFEST_VERSION) on schema changes
        // with `OBS_REGEN_GOLDEN=1 cargo test -p fading-obs golden`.
        if std::env::var_os("OBS_REGEN_GOLDEN").is_some() {
            std::fs::write(
                concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_manifest.json"),
                fixture().to_json(),
            )
            .unwrap();
        }
        let golden = include_str!("../tests/golden_manifest.json");
        let parsed: RunManifest = serde_json::from_str(golden).unwrap();
        assert_eq!(parsed, fixture());
        assert_eq!(fixture().to_json().trim(), golden.trim());
    }

    #[test]
    fn builder_captures_context_and_live_state() {
        crate::counter("obs.test.manifest_counter").add(7);
        let m = ManifestBuilder::new("unit")
            .seed(42)
            .config_kv("trials", 1000)
            .finish();
        assert_eq!(m.version, MANIFEST_VERSION);
        assert_eq!(m.name, "unit");
        assert_eq!(m.seed, 42);
        assert_eq!(m.config["trials"], "1000");
        assert!(m.metrics.counters["obs.test.manifest_counter"] >= 7);
        assert!(m.build_profile == "debug" || m.build_profile == "release");
        assert!(!m.git_describe.is_empty());
    }

    #[test]
    fn write_creates_parseable_json() {
        let path = std::env::temp_dir().join("fading_obs_manifest_test.json");
        fixture().write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: RunManifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, fixture());
        let _ = std::fs::remove_file(&path);
    }
}
