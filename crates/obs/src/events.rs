//! Structured JSONL event sink.
//!
//! When a sink is installed ([`set_event_sink`]), every
//! [`emit_event`] appends one JSON object per line:
//! `{"ts_ms":…,"kind":"…",<fields>}`. With no sink installed, emitting
//! is a cheap no-op, so library code can emit unconditionally.

use serde::Node;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, OnceLock};
use std::time::SystemTime;

/// A field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventValue {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for EventValue {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}
impl From<usize> for EventValue {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}
impl From<f64> for EventValue {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}
impl From<&str> for EventValue {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}
impl From<String> for EventValue {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}
impl From<bool> for EventValue {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl EventValue {
    fn to_node(&self) -> Node {
        match self {
            Self::U64(v) => Node::U64(*v),
            Self::F64(v) => Node::F64(*v),
            Self::Str(v) => Node::Str(v.clone()),
            Self::Bool(v) => Node::Bool(*v),
        }
    }
}

/// Wrapper so a hand-built [`Node`] can go through `serde_json`.
struct RawNode(Node);

impl serde::Serialize for RawNode {
    fn serialize_node(&self) -> Node {
        self.0.clone()
    }
}

fn sink() -> &'static Mutex<Option<BufWriter<File>>> {
    static SINK: OnceLock<Mutex<Option<BufWriter<File>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Installs (or replaces) the process-wide event sink, truncating
/// `path`. Pass-through I/O errors are the caller's to handle.
pub fn set_event_sink(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    *sink().lock().unwrap() = Some(BufWriter::new(file));
    Ok(())
}

/// Flushes and removes the current sink, if any.
pub fn close_event_sink() {
    if let Some(mut w) = sink().lock().unwrap().take() {
        let _ = w.flush();
    }
}

/// Appends one event line (no-op without a sink). `kind` identifies
/// the event; `fields` are additional key/value pairs.
pub fn emit_event(kind: &str, fields: &[(&str, EventValue)]) {
    let mut guard = sink().lock().unwrap();
    let Some(writer) = guard.as_mut() else {
        return;
    };
    let ts_ms = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut entries = vec![
        ("ts_ms".to_string(), Node::U64(ts_ms)),
        ("kind".to_string(), Node::Str(kind.to_string())),
    ];
    for (k, v) in fields {
        entries.push((k.to_string(), v.to_node()));
    }
    let line = serde_json::to_string(&RawNode(Node::Map(entries))).unwrap_or_default();
    // Per-line flush keeps the log usable even if the run is killed;
    // events are low-rate by design.
    let _ = writeln!(writer, "{line}");
    let _ = writer.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_sink_is_a_noop() {
        emit_event("noop", &[("x", 1u64.into())]);
    }

    #[test]
    fn events_append_as_json_lines() {
        let path = std::env::temp_dir().join("fading_obs_events_test.jsonl");
        set_event_sink(&path).unwrap();
        emit_event(
            "point",
            &[("n", 100usize.into()), ("scheduler", "RLE".into())],
        );
        emit_event("done", &[("ok", true.into()), ("secs", 1.5f64.into())]);
        close_event_sink();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"point\""), "{}", lines[0]);
        assert!(lines[0].contains("\"scheduler\":\"RLE\""));
        assert!(lines[1].contains("\"ok\":true"));
        // Every line parses back as JSON with the mandatory keys.
        for line in lines {
            let node = serde_json::parse_node_str(line).unwrap();
            assert!(node.get("ts_ms").is_some());
            assert!(node.get("kind").is_some());
        }
        let _ = std::fs::remove_file(&path);
    }
}
