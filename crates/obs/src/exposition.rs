//! Prometheus text-format exposition for [`MetricsSnapshot`].
//!
//! [`render_prometheus`] renders the registry snapshot in the
//! Prometheus text exposition format (version 0.0.4): counters and
//! gauges as single samples, histograms as cumulative `_bucket{le=…}`
//! series plus `_sum`/`_count`. Dotted metric names are sanitized to
//! the `[a-zA-Z_][a-zA-Z0-9_]*` charset (`core.rle.picks` →
//! `core_rle_picks`). Output is deterministic: metrics render in
//! `BTreeMap` order and floats in shortest-round-trip form.
//!
//! This is a renderer, not a server — the CLI writes the text to a
//! file (`--prom-out`) for a node-exporter-style textfile collector,
//! and tests scrape the string directly.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write;

/// Sanitizes a dotted metric name into the Prometheus charset.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        let ok = ok && !(i == 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Formats an `f64` the way Prometheus expects (`+Inf`-style handled
/// by the caller; plain values use shortest round-trip form).
fn prom_f64(v: f64) -> String {
    if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
        // Keep integral values readable ("12" not "12.0" is invalid
        // in some scrapers; Prometheus accepts both, choose "12").
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (bound, count) in h.bounds.iter().zip(&h.counts) {
        cumulative += count;
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            prom_f64(*bound)
        );
    }
    cumulative += h.overflow;
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
    let _ = writeln!(out, "{name}_sum {}", prom_f64(h.sum));
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Renders `snap` in the Prometheus text exposition format.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let name = prom_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snap.gauges {
        let name = prom_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", prom_f64(*value));
    }
    for (name, h) in &snap.histograms {
        render_histogram(&mut out, &prom_name(name), h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn sanitizes_dotted_names() {
        assert_eq!(prom_name("core.rle.picks"), "core_rle_picks");
        assert_eq!(prom_name("churn.phase.mutate"), "churn_phase_mutate");
        assert_eq!(prom_name("7seas"), "_seas");
        assert_eq!(prom_name("a-b/c"), "a_b_c");
    }

    #[test]
    fn renders_counters_gauges_histograms() {
        let mut snap = MetricsSnapshot::empty();
        snap.counters.insert("core.rle.picks".into(), 96);
        snap.gauges.insert("sim.churn.backlog".into(), 12.5);
        snap.histograms.insert(
            "churn.phase.mutate".into(),
            HistogramSnapshot {
                bounds: vec![10.0, 100.0],
                counts: vec![3, 2],
                overflow: 1,
                count: 6,
                sum: 250.0,
                p50: None,
                p95: None,
                p99: None,
            },
        );
        let text = render_prometheus(&snap);
        assert!(text.contains("# TYPE core_rle_picks counter\ncore_rle_picks 96\n"));
        assert!(text.contains("# TYPE sim_churn_backlog gauge\nsim_churn_backlog 12.5\n"));
        assert!(text.contains("# TYPE churn_phase_mutate histogram"));
        // Buckets are cumulative and end with +Inf == count.
        assert!(text.contains("churn_phase_mutate_bucket{le=\"10\"} 3"));
        assert!(text.contains("churn_phase_mutate_bucket{le=\"100\"} 5"));
        assert!(text.contains("churn_phase_mutate_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("churn_phase_mutate_sum 250"));
        assert!(text.contains("churn_phase_mutate_count 6"));
    }

    #[test]
    fn output_is_deterministic_and_sorted() {
        let mut snap = MetricsSnapshot::empty();
        snap.counters.insert("b.two".into(), 2);
        snap.counters.insert("a.one".into(), 1);
        let text = render_prometheus(&snap);
        let a = text.find("a_one").unwrap();
        let b = text.find("b_two").unwrap();
        assert!(a < b);
        assert_eq!(text, render_prometheus(&snap));
    }

    #[test]
    fn empty_snapshot_renders_empty_string() {
        assert_eq!(render_prometheus(&MetricsSnapshot::empty()), "");
        let _ = BTreeMap::<String, u64>::new(); // silence unused import on older toolchains
    }
}
