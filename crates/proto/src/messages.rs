//! Protocol messages and traffic accounting.

use fading_net::LinkId;
use serde::{Deserialize, Serialize};

/// The kinds of messages DLS exchanges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// One-time neighbor discovery: link id, length, endpoint positions.
    Hello,
    /// Per-round liveness: "I am still undecided, my link length is …".
    Status,
    /// Activation announcement from a new active receiver, carrying the
    /// deletion radius.
    Clear,
    /// Withdrawal after the final verification handshake.
    Nack,
}

/// A message on the wire (payloads are implicit — the engine routes by
/// kind, sender, and round; the real payloads are tiny scalars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Message type.
    pub kind: MessageKind,
    /// Originating link.
    pub from: LinkId,
    /// Round in which it was sent (0 = discovery).
    pub round: u32,
}

/// Aggregate traffic statistics of one protocol execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficStats {
    /// `Hello` messages (= number of nodes).
    pub hello: u64,
    /// `Status` messages across all rounds.
    pub status: u64,
    /// `Clear` messages (= number of activations).
    pub clear: u64,
    /// `Nack` withdrawals.
    pub nack: u64,
}

impl TrafficStats {
    /// Total messages sent.
    pub fn total(&self) -> u64 {
        self.hello + self.status + self.clear + self.nack
    }

    /// Records one sent message.
    pub fn record(&mut self, kind: MessageKind) {
        match kind {
            MessageKind::Hello => self.hello += 1,
            MessageKind::Status => self.status += 1,
            MessageKind::Clear => self.clear += 1,
            MessageKind::Nack => self.nack += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut t = TrafficStats::default();
        t.record(MessageKind::Hello);
        t.record(MessageKind::Hello);
        t.record(MessageKind::Status);
        t.record(MessageKind::Clear);
        t.record(MessageKind::Nack);
        assert_eq!(t.hello, 2);
        assert_eq!(t.status, 1);
        assert_eq!(t.clear, 1);
        assert_eq!(t.nack, 1);
        assert_eq!(t.total(), 5);
    }

    #[test]
    fn message_is_compact() {
        // Messages are routed by metadata only; keep them word-sized.
        assert!(std::mem::size_of::<Message>() <= 16);
    }

    #[test]
    fn serde_roundtrip() {
        let m = Message {
            kind: MessageKind::Clear,
            from: LinkId(3),
            round: 7,
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: Message = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
