//! The synchronous protocol engine.
//!
//! The engine plays the role of the radio medium: it delivers local
//! broadcasts to the contention neighborhood and lets each receiver
//! "measure" the interference factor accumulated from currently active
//! senders (a physically observable quantity — no messages needed).
//! All *decisions* are taken by per-node state machines using only
//! their inbox and local measurements.

use crate::messages::{MessageKind, TrafficStats};
use fading_core::constants::rle_c1;
use fading_core::{FeasibilityReport, Problem, Schedule};
use fading_net::LinkId;

/// Per-node protocol phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Undecided,
    Active,
    Retired,
}

/// The DLS protocol runner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DlsProtocol {
    /// Budget split, as in RLE/DLS.
    pub c2: f64,
}

/// Result of executing the protocol on an instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolOutcome {
    /// The agreed schedule.
    pub schedule: Schedule,
    /// Synchronous rounds until quiescence (excluding discovery).
    pub rounds: u32,
    /// Messages sent, by kind.
    pub traffic: TrafficStats,
}

impl Default for DlsProtocol {
    fn default() -> Self {
        Self { c2: 0.5 }
    }
}

impl DlsProtocol {
    /// Protocol with the symmetric split `c₂ = 1/2` (matching
    /// [`fading_core::algo::Dls::new`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Executes the protocol.
    pub fn run(&self, problem: &Problem) -> ProtocolOutcome {
        let links = problem.links();
        let n = links.len();
        let mut traffic = TrafficStats::default();
        if n == 0 {
            return ProtocolOutcome {
                schedule: Schedule::empty(),
                rounds: 0,
                traffic,
            };
        }
        let c1 = rle_c1(problem.params(), problem.gamma_eps(), self.c2);
        let threshold = self.c2 * problem.gamma_eps();

        // --- Discovery (round 0): every node broadcasts Hello once.
        // The engine derives the contention topology: i and j contend
        // when either sender is inside the other's receiver disk scaled
        // by the longer link.
        for _ in 0..n {
            traffic.record(MessageKind::Hello);
        }
        let contends = |a: LinkId, b: LinkId| -> bool {
            let scale = c1 * links.length(a).max(links.length(b));
            links.link(a).sender.distance(&links.link(b).receiver) < scale
                || links.link(b).sender.distance(&links.link(a).receiver) < scale
        };
        let contenders: Vec<Vec<LinkId>> = links
            .ids()
            .map(|a| links.ids().filter(|&b| b != a && contends(a, b)).collect())
            .collect();

        let mut phase = vec![Phase::Undecided; n];
        // Local physical measurement: interference factor accumulated
        // at each undecided receiver from active senders.
        let mut measured = vec![0.0f64; n];
        let mut rounds = 0u32;

        loop {
            rounds += 1;
            // 1. Budget retirement — local measurement, no message.
            for j in links.ids() {
                if phase[j.index()] == Phase::Undecided && measured[j.index()] > threshold {
                    phase[j.index()] = Phase::Retired;
                }
            }
            // 2. Status broadcast from every undecided node.
            let undecided: Vec<LinkId> = links
                .ids()
                .filter(|&j| phase[j.index()] == Phase::Undecided)
                .collect();
            for _ in &undecided {
                traffic.record(MessageKind::Status);
            }
            // 3. Dominance decision from each node's inbox: a node
            // activates iff every undecided contender it heard from has
            // a longer link (ties by id).
            let activating: Vec<LinkId> = undecided
                .iter()
                .copied()
                .filter(|&j| {
                    contenders[j.index()]
                        .iter()
                        .filter(|&&k| phase[k.index()] == Phase::Undecided)
                        .all(|&k| (links.length(j), j) < (links.length(k), k))
                })
                .collect();
            if activating.is_empty() {
                break;
            }
            for &i in &activating {
                phase[i.index()] = Phase::Active;
            }
            // 4. Clear broadcasts; disk retirements and measurement
            // updates at the remaining undecided receivers.
            for &i in &activating {
                traffic.record(MessageKind::Clear);
                let r_i = links.link(i).receiver;
                let radius = c1 * links.length(i);
                for j in links.ids() {
                    if phase[j.index()] != Phase::Undecided {
                        continue;
                    }
                    if links.link(j).sender.distance(&r_i) < radius {
                        phase[j.index()] = Phase::Retired;
                    } else {
                        // The receiver *measures* the clear broadcast:
                        // a scalar factor lookup, exact under every
                        // interference backend.
                        measured[j.index()] += problem.factor(i, j);
                    }
                }
            }
            assert!(rounds <= n as u32 + 1, "protocol failed to make progress");
        }

        // 5. Verification handshake: receivers that still exceed the
        // full budget NACK out, worst first (mirrors the centralized
        // safety valve; never fires on the paper workloads).
        let mut members: Vec<LinkId> = links
            .ids()
            .filter(|&j| phase[j.index()] == Phase::Active)
            .collect();
        loop {
            let schedule = Schedule::from_ids(members.iter().copied());
            let report = FeasibilityReport::evaluate(problem, &schedule);
            if report.is_feasible() {
                return ProtocolOutcome {
                    schedule,
                    rounds,
                    traffic,
                };
            }
            let worst = report
                .entries()
                .iter()
                .max_by(|a, b| a.interference_sum.total_cmp(&b.interference_sum))
                .expect("infeasible report cannot be empty")
                .id;
            traffic.record(MessageKind::Nack);
            members.retain(|&j| j != worst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fading_core::algo::Dls;
    use fading_core::Scheduler;
    use fading_net::{TopologyGenerator, UniformGenerator};
    use proptest::prelude::*;

    fn problem(n: usize, seed: u64) -> Problem {
        Problem::paper(UniformGenerator::paper(n).generate(seed), 3.0)
    }

    #[test]
    fn protocol_matches_centralized_dls() {
        for seed in 0..5 {
            let p = problem(200, seed);
            let centralized = Dls::new().schedule(&p);
            let outcome = DlsProtocol::new().run(&p);
            assert_eq!(
                outcome.schedule, centralized,
                "protocol and centralized DLS diverged on seed {seed}"
            );
        }
    }

    #[test]
    fn schedule_is_feasible() {
        let p = problem(250, 9);
        let outcome = DlsProtocol::new().run(&p);
        assert!(fading_core::feasibility::is_feasible(&p, &outcome.schedule));
        assert!(!outcome.schedule.is_empty());
    }

    #[test]
    fn traffic_accounting_is_consistent() {
        let p = problem(150, 3);
        let outcome = DlsProtocol::new().run(&p);
        // One Hello per node.
        assert_eq!(outcome.traffic.hello, 150);
        // One Clear per scheduled link (plus none for NACKed ones here).
        assert_eq!(
            outcome.traffic.clear,
            outcome.schedule.len() as u64 + outcome.traffic.nack
        );
        // Status messages: at most (undecided per round) × rounds ≤ N·rounds.
        assert!(outcome.traffic.status <= 150 * outcome.rounds as u64);
        assert!(outcome.traffic.status >= outcome.schedule.len() as u64);
        assert_eq!(
            outcome.traffic.total(),
            outcome.traffic.hello
                + outcome.traffic.status
                + outcome.traffic.clear
                + outcome.traffic.nack
        );
    }

    #[test]
    fn converges_in_few_rounds() {
        let p = problem(300, 4);
        let outcome = DlsProtocol::new().run(&p);
        assert!(
            outcome.rounds <= 30,
            "took {} rounds for 300 links",
            outcome.rounds
        );
    }

    #[test]
    fn empty_instance() {
        let links = fading_net::LinkSet::new(fading_geom::Rect::square(1.0), vec![]);
        let p = Problem::paper(links, 3.0);
        let outcome = DlsProtocol::new().run(&p);
        assert!(outcome.schedule.is_empty());
        assert_eq!(outcome.rounds, 0);
        assert_eq!(outcome.traffic.total(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn protocol_equals_centralized_on_random_instances(
            n in 2usize..60,
            seed in 0u64..2000,
            alpha in 2.2f64..5.0,
        ) {
            let links = UniformGenerator::paper(n).generate(seed);
            let p = Problem::paper(links, alpha);
            let centralized = Dls { c2: 0.5 }.schedule(&p);
            let outcome = DlsProtocol::new().run(&p);
            prop_assert_eq!(outcome.schedule, centralized);
        }
    }
}
