//! A message-passing execution of the DLS decentralized scheduler.
//!
//! `fading-core`'s [`Dls`] computes the decentralized schedule with
//! centralized bookkeeping (convenient for sweeps). This crate runs the
//! *actual protocol*: per-link nodes that exchange explicit messages
//! over radius-limited local broadcast and keep only local state. It
//! serves two purposes:
//!
//! 1. **Validation** — the protocol execution must reach exactly the
//!    same schedule as the centralized emulation (tested);
//! 2. **Cost accounting** — rounds to converge and messages sent, the
//!    numbers a protocol paper would report (`ext_dls_overhead`).
//!
//! Protocol sketch (one synchronous round):
//!
//! * every undecided node that measures accumulated interference above
//!   `c₂ γ_ε` at its receiver retires silently;
//! * every undecided node broadcasts `Status { length, id }` to its
//!   contention neighborhood;
//! * a node activates iff it dominates (shorter link, ties by id) every
//!   undecided contender it heard from;
//! * each activating node's receiver broadcasts `Clear { radius }`;
//!   undecided nodes whose *sender* lies inside a clear disk retire;
//! * a final handshake lets any receiver that still exceeds its budget
//!   send `Nack` and withdraw (never observed on the paper workloads,
//!   mirroring the centralized safety valve).
//!
//! Neighbor discovery (`Hello`) happens once at start-up. Two links
//! contend when either sender sits within `c₁·max(dᵢ, dⱼ)` of the other
//! receiver — the longer link's node initiates contact, so the pair is
//! discoverable with local information only.
//!
//! [`Dls`]: fading_core::algo::Dls

pub mod engine;
pub mod messages;

pub use engine::{DlsProtocol, ProtocolOutcome};
pub use messages::{Message, MessageKind, TrafficStats};
