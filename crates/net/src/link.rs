//! Transmission links.

use fading_geom::Point2;
use serde::{Deserialize, Serialize};

/// Identifier of a link within a [`crate::LinkSet`] — also the index of
/// the link in the set's storage, so lookups are O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The link's position in its set's storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A directed transmission link `(s_i, r_i)` with data rate `λ_i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Identifier (index within the owning set).
    pub id: LinkId,
    /// Sender position `s_i`.
    pub sender: Point2,
    /// Receiver position `r_i`.
    pub receiver: Point2,
    /// Data rate `λ_i` carried when the link succeeds.
    pub rate: f64,
}

impl Link {
    /// Creates a link, validating geometry and rate.
    ///
    /// # Panics
    /// Panics if sender and receiver coincide or the rate is not
    /// finite and positive.
    pub fn new(id: LinkId, sender: Point2, receiver: Point2, rate: f64) -> Self {
        assert!(
            sender.distance_sq(&receiver) > 0.0,
            "link {id} has zero length (sender == receiver)"
        );
        assert!(
            rate.is_finite() && rate > 0.0,
            "link {id} rate must be finite and positive, got {rate}"
        );
        Self {
            id,
            sender,
            receiver,
            rate,
        }
    }

    /// The link length `d_ii = |s_i − r_i|`.
    #[inline]
    pub fn length(&self) -> f64 {
        self.sender.distance(&self.receiver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_is_sender_receiver_distance() {
        let l = Link::new(LinkId(0), Point2::new(0.0, 0.0), Point2::new(3.0, 4.0), 1.0);
        assert_eq!(l.length(), 5.0);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(LinkId(17).to_string(), "l17");
    }

    #[test]
    fn id_index_roundtrip() {
        assert_eq!(LinkId(5).index(), 5);
    }

    #[test]
    #[should_panic(expected = "zero length")]
    fn rejects_colocated_endpoints() {
        let p = Point2::new(1.0, 1.0);
        Link::new(LinkId(0), p, p, 1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be finite and positive")]
    fn rejects_zero_rate() {
        Link::new(LinkId(0), Point2::origin(), Point2::new(1.0, 0.0), 0.0);
    }
}
