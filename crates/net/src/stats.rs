//! Instance statistics — the workload-characterization numbers quoted
//! in EXPERIMENTS.md and printed by the examples.

use crate::linkset::LinkSet;
use fading_geom::SpatialHash;
use serde::{Deserialize, Serialize};

/// Summary statistics of a scheduling instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceStats {
    /// Number of links.
    pub n: usize,
    /// Links per unit area (density).
    pub density: f64,
    /// Shortest link length `δ`.
    pub min_length: f64,
    /// Longest link length.
    pub max_length: f64,
    /// Mean link length.
    pub mean_length: f64,
    /// Length diversity `g(L)` (Definition 4.1).
    pub diversity: usize,
    /// Mean distance from each sender to its nearest other sender —
    /// the contention scale.
    pub mean_nearest_sender: f64,
    /// `Δ`: ratio of the largest to the smallest pairwise node
    /// distance (the paper's RLE analysis parameter).
    pub distance_spread: f64,
}

/// Computes [`InstanceStats`] for a non-empty instance.
///
/// # Panics
/// Panics on an empty instance (no statistics to compute).
pub fn instance_stats(links: &LinkSet) -> InstanceStats {
    assert!(!links.is_empty(), "statistics of an empty instance");
    let n = links.len();
    let lengths: Vec<f64> = links.links().iter().map(|l| l.length()).collect();
    let min_length = lengths.iter().copied().fold(f64::INFINITY, f64::min);
    let max_length = lengths.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean_length = lengths.iter().sum::<f64>() / n as f64;

    // Nearest-neighbor distances among senders via the spatial hash.
    let senders = links.sender_positions();
    let mean_nearest_sender = if n >= 2 {
        let hash = SpatialHash::build(&senders, (mean_length * 4.0).max(1e-9));
        let total: f64 = senders
            .iter()
            .enumerate()
            .map(|(i, p)| {
                // Query the hash excluding the point itself; the
                // zero-alloc visitor keeps the doubling loop free of a
                // per-iteration Vec.
                let mut best = f64::INFINITY;
                let mut radius = mean_length.max(1e-9);
                loop {
                    hash.for_each_in_radius(p, radius, |j| {
                        if j as usize != i {
                            best = best.min(senders[j as usize].distance(p));
                        }
                    });
                    if best.is_finite() {
                        return best;
                    }
                    radius *= 2.0;
                    if radius > links.region().diagonal() * 2.0 {
                        // Fallback: full scan (degenerate geometry).
                        for (j, q) in senders.iter().enumerate() {
                            if j != i {
                                best = best.min(q.distance(p));
                            }
                        }
                        return best;
                    }
                }
            })
            .sum();
        total / n as f64
    } else {
        f64::NAN
    };

    // Distance spread Δ over all node pairs (senders and receivers).
    let mut all = senders;
    all.extend(links.receiver_positions());
    let mut min_d = f64::INFINITY;
    let mut max_d: f64 = 0.0;
    for i in 0..all.len() {
        for j in (i + 1)..all.len() {
            let d = all[i].distance(&all[j]);
            if d > 0.0 {
                min_d = min_d.min(d);
            }
            max_d = max_d.max(d);
        }
    }

    InstanceStats {
        n,
        density: n as f64 / links.region().area(),
        min_length,
        max_length,
        mean_length,
        diversity: crate::diversity::length_diversity(links),
        mean_nearest_sender,
        distance_spread: max_d / min_d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GridGenerator, RateModel, TopologyGenerator, UniformGenerator};

    #[test]
    fn paper_workload_statistics_are_sane() {
        let links = UniformGenerator::paper(200).generate(1);
        let s = instance_stats(&links);
        assert_eq!(s.n, 200);
        assert!((s.density - 200.0 / 250_000.0).abs() < 1e-12);
        assert!(s.min_length >= 5.0 && s.max_length <= 20.0);
        assert!(s.mean_length > 5.0 && s.mean_length < 20.0);
        assert_eq!(s.diversity, 2);
        assert!(s.mean_nearest_sender > 0.0);
        assert!(s.distance_spread > 1.0);
    }

    #[test]
    fn lattice_nearest_neighbor_is_the_spacing_scale() {
        let gen = GridGenerator {
            rows: 6,
            cols: 6,
            spacing: 50.0,
            link_length: 10.0,
            rates: RateModel::Fixed(1.0),
        };
        let s = instance_stats(&gen.generate(0));
        assert!(
            (s.mean_nearest_sender - 50.0).abs() < 1e-9,
            "lattice nearest sender {}",
            s.mean_nearest_sender
        );
        assert_eq!(s.diversity, 1);
    }

    #[test]
    fn denser_instances_have_smaller_nearest_neighbor() {
        let sparse = instance_stats(&UniformGenerator::paper(50).generate(2));
        let dense = instance_stats(&UniformGenerator::paper(500).generate(2));
        assert!(dense.mean_nearest_sender < sparse.mean_nearest_sender);
        assert!(dense.density > sparse.density);
    }

    #[test]
    fn serde_roundtrip() {
        let s = instance_stats(&UniformGenerator::paper(30).generate(3));
        let json = serde_json::to_string(&s).unwrap();
        let back: InstanceStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    #[should_panic(expected = "empty instance")]
    fn rejects_empty() {
        instance_stats(&LinkSet::new(fading_geom::Rect::square(1.0), vec![]));
    }
}
