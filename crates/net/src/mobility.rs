//! Random-waypoint mobility.
//!
//! The paper motivates fading with "mobility in a multi-path
//! propagation environment" (Section I). This module supplies the
//! mobility half of that story: each transmitter–receiver pair moves as
//! a rigid unit (think vehicle-mounted radios — link lengths stay
//! constant, cross distances change) following the classic random
//! waypoint model: pick a destination uniformly in the region, travel
//! to it at a per-leg speed, repeat.
//!
//! The extension experiment (`ext_mobility`) computes a schedule at
//! `t = 0` and tracks how its reliability erodes as topology drift
//! invalidates the interference geometry it was computed for.

use crate::link::{Link, LinkId};
use crate::linkset::LinkSet;
use fading_geom::{Point2, Rect};
use fading_math::seeded_rng;
use rand::rngs::StdRng;
use rand::Rng;

/// Random-waypoint state for every link of an instance.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    region: Rect,
    /// Min/max speed per leg (units per time step).
    speed_lo: f64,
    speed_hi: f64,
    rng: StdRng,
    /// Per link: current sender position, receiver offset, waypoint,
    /// current speed.
    states: Vec<NodeState>,
    rates: Vec<f64>,
}

#[derive(Debug, Clone, Copy)]
struct NodeState {
    sender: Point2,
    offset: Point2,
    waypoint: Point2,
    speed: f64,
    /// Waypoint sampling bounds: the region shrunk by the rigid
    /// receiver offset, so a sender inside it keeps *both* endpoints
    /// in-region along the whole leg (the leg is a straight segment and
    /// the bounds are convex).
    bounds: Rect,
}

/// The region of valid *sender* positions for a rigid pair with the
/// given receiver offset: `region ∩ (region − offset)`. Any sender in
/// it has its receiver in-region too. Falls back per axis to the full
/// region when the pair is wider/taller than the region itself (the
/// pair cannot fit; legacy behavior is the best we can do).
fn sender_bounds(region: &Rect, offset: Point2) -> Rect {
    let lo_x = region.min().x.max(region.min().x - offset.x);
    let hi_x = region.max().x.min(region.max().x - offset.x);
    let lo_y = region.min().y.max(region.min().y - offset.y);
    let hi_y = region.max().y.min(region.max().y - offset.y);
    let (lo_x, hi_x) = if lo_x <= hi_x {
        (lo_x, hi_x)
    } else {
        (region.min().x, region.max().x)
    };
    let (lo_y, hi_y) = if lo_y <= hi_y {
        (lo_y, hi_y)
    } else {
        (region.min().y, region.max().y)
    };
    Rect::new(Point2::new(lo_x, lo_y), Point2::new(hi_x, hi_y))
}

impl RandomWaypoint {
    /// Initializes mobility for `links`, keeping each receiver's offset
    /// from its sender rigid.
    ///
    /// # Panics
    /// Panics unless `0 < speed_lo ≤ speed_hi`.
    pub fn new(links: &LinkSet, speed_lo: f64, speed_hi: f64, seed: u64) -> Self {
        assert!(
            speed_lo > 0.0 && speed_hi >= speed_lo,
            "need 0 < speed_lo ≤ speed_hi, got [{speed_lo}, {speed_hi}]"
        );
        let region = *links.region();
        let mut rng = seeded_rng(seed);
        let states = links
            .links()
            .iter()
            .map(|l| {
                let offset = l.receiver - l.sender;
                let bounds = sender_bounds(&region, offset);
                let waypoint = Self::random_point(&mut rng, &bounds);
                NodeState {
                    sender: l.sender,
                    offset,
                    waypoint,
                    speed: rng.gen_range(speed_lo..=speed_hi),
                    bounds,
                }
            })
            .collect();
        let rates = links.links().iter().map(|l| l.rate).collect();
        Self {
            region,
            speed_lo,
            speed_hi,
            rng,
            states,
            rates,
        }
    }

    fn random_point(rng: &mut StdRng, region: &Rect) -> Point2 {
        Point2::new(
            rng.gen_range(region.min().x..=region.max().x),
            rng.gen_range(region.min().y..=region.max().y),
        )
    }

    /// Advances every link by one time step of duration `dt` and
    /// returns the moved instance.
    pub fn step(&mut self, dt: f64) -> LinkSet {
        assert!(dt > 0.0, "time step must be positive");
        for s in &mut self.states {
            let mut budget = s.speed * dt;
            // Travel toward the waypoint, possibly reaching it and
            // starting a new leg within the same step.
            while budget > 0.0 {
                let to_target = s.waypoint - s.sender;
                let dist = to_target.norm();
                if dist <= budget {
                    s.sender = s.waypoint;
                    budget -= dist;
                    s.waypoint = Self::random_point(&mut self.rng, &s.bounds);
                    s.speed = self.rng.gen_range(self.speed_lo..=self.speed_hi);
                    if dist == 0.0 {
                        break; // degenerate zero-length leg; retry next step
                    }
                } else {
                    let scale = budget / dist;
                    s.sender = s.sender + Point2::new(to_target.x * scale, to_target.y * scale);
                    budget = 0.0;
                }
            }
        }
        self.snapshot()
    }

    /// The current positions as a [`LinkSet`].
    pub fn snapshot(&self) -> LinkSet {
        let links = self
            .states
            .iter()
            .zip(&self.rates)
            .enumerate()
            .map(|(i, (s, &rate))| Link::new(LinkId(i as u32), s.sender, s.sender + s.offset, rate))
            .collect();
        LinkSet::new(self.region, links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TopologyGenerator, UniformGenerator};

    fn start() -> LinkSet {
        UniformGenerator::paper(60).generate(5)
    }

    #[test]
    fn link_lengths_are_preserved() {
        let links = start();
        let lengths: Vec<f64> = links.links().iter().map(Link::length).collect();
        let mut mob = RandomWaypoint::new(&links, 1.0, 5.0, 7);
        for _ in 0..20 {
            let moved = mob.step(1.0);
            for (l, &len) in moved.links().iter().zip(&lengths) {
                assert!((l.length() - len).abs() < 1e-9, "length drifted");
            }
        }
    }

    #[test]
    fn senders_stay_inside_the_region() {
        let links = start();
        let region = *links.region();
        let mut mob = RandomWaypoint::new(&links, 2.0, 10.0, 11);
        for _ in 0..50 {
            let moved = mob.step(1.0);
            for l in moved.links() {
                assert!(region.contains(&l.sender), "sender escaped: {:?}", l.sender);
            }
        }
    }

    #[test]
    fn receivers_stay_inside_the_region_too() {
        // A link hugging the right edge with its receiver offset
        // pointing further right: the legacy sampler could pick a
        // waypoint whose rigid offset carried the receiver out of the
        // region. Drive it hard along many legs.
        let region = Rect::square(100.0);
        let links = LinkSet::new(
            region,
            vec![
                Link::new(
                    LinkId(0),
                    Point2::new(95.0, 50.0),
                    Point2::new(99.5, 50.0),
                    1.0,
                ),
                Link::new(
                    LinkId(1),
                    Point2::new(50.0, 1.0),
                    Point2::new(50.0, 19.0),
                    1.0,
                ),
            ],
        );
        let mut mob = RandomWaypoint::new(&links, 20.0, 60.0, 23);
        for _ in 0..300 {
            let moved = mob.step(1.0);
            for l in moved.links() {
                assert!(region.contains(&l.sender), "sender escaped: {:?}", l.sender);
                assert!(
                    region.contains(&l.receiver),
                    "receiver escaped: {:?}",
                    l.receiver
                );
            }
        }
    }

    #[test]
    fn positions_actually_move() {
        let links = start();
        let mut mob = RandomWaypoint::new(&links, 3.0, 3.0, 13);
        let moved = mob.step(1.0);
        let displacement: f64 = moved
            .links()
            .iter()
            .zip(links.links())
            .map(|(a, b)| a.sender.distance(&b.sender))
            .sum::<f64>()
            / links.len() as f64;
        // Each sender travels ~3 units (less only if its waypoint was
        // nearer than the step budget).
        assert!(displacement > 1.0, "mean displacement {displacement}");
        assert!(displacement <= 3.0 + 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let links = start();
        let mut a = RandomWaypoint::new(&links, 1.0, 4.0, 17);
        let mut b = RandomWaypoint::new(&links, 1.0, 4.0, 17);
        for _ in 0..10 {
            assert_eq!(a.step(0.5), b.step(0.5));
        }
    }

    #[test]
    fn snapshot_before_stepping_is_the_input() {
        let links = start();
        let mob = RandomWaypoint::new(&links, 1.0, 2.0, 19);
        assert_eq!(mob.snapshot(), links);
    }

    #[test]
    #[should_panic(expected = "speed_lo")]
    fn rejects_bad_speeds() {
        RandomWaypoint::new(&start(), 0.0, 1.0, 0);
    }
}
