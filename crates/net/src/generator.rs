//! Topology / workload generators.
//!
//! [`UniformGenerator`] reproduces the paper's evaluation setup
//! (Section V): senders uniform in a square region, each receiver at a
//! uniform random distance in a uniform random direction from its
//! sender. The other generators exercise the algorithms on structured
//! geometries (clusters, lattices, chains) for the extension
//! experiments.

use crate::link::{Link, LinkId};
use crate::linkset::{position_key, LinkSet};
use fading_geom::{Point2, Rect};
use fading_math::seeded_rng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// How link data rates are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RateModel {
    /// Every link gets the same rate (the paper's evaluation and RLE's
    /// special case).
    Fixed(f64),
    /// Rates drawn uniformly from `[lo, hi]` (the general Fading-R-LS
    /// problem that LDP targets).
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Rate proportional to link length (`rate = scale · d`): longer
    /// hops carry more value, the regime where LDP's nested classes
    /// beat the original two-sided ones (ablation A1).
    LengthProportional {
        /// Multiplier applied to the link length.
        scale: f64,
    },
}

impl RateModel {
    /// Draws a rate for a link of length `length`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, length: f64) -> f64 {
        match *self {
            RateModel::Fixed(r) => r,
            RateModel::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            RateModel::LengthProportional { scale } => scale * length,
        }
    }

    fn validate(&self) {
        match *self {
            RateModel::Fixed(r) => {
                assert!(r.is_finite() && r > 0.0, "fixed rate must be positive")
            }
            RateModel::Uniform { lo, hi } => assert!(
                lo.is_finite() && lo > 0.0 && hi >= lo,
                "uniform rate range must satisfy 0 < lo ≤ hi"
            ),
            RateModel::LengthProportional { scale } => assert!(
                scale.is_finite() && scale > 0.0,
                "length-proportional scale must be positive"
            ),
        }
    }
}

/// A reproducible instance generator.
pub trait TopologyGenerator {
    /// Generates an instance from a seed; equal seeds give equal
    /// instances.
    fn generate(&self, seed: u64) -> LinkSet;
}

/// The paper's Section V workload: senders uniform in a `side × side`
/// square, receiver of each sender at distance `U[len_lo, len_hi]` in a
/// uniformly random direction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformGenerator {
    /// Region side length (paper: 500).
    pub side: f64,
    /// Number of links.
    pub n: usize,
    /// Shortest possible link (paper: 5).
    pub len_lo: f64,
    /// Longest possible link (paper: 20).
    pub len_hi: f64,
    /// Rate model (paper: `Fixed(1.0)`).
    pub rates: RateModel,
}

impl UniformGenerator {
    /// The paper's exact evaluation configuration for `n` links.
    pub fn paper(n: usize) -> Self {
        Self {
            side: 500.0,
            n,
            len_lo: 5.0,
            len_hi: 20.0,
            rates: RateModel::Fixed(1.0),
        }
    }
}

impl TopologyGenerator for UniformGenerator {
    fn generate(&self, seed: u64) -> LinkSet {
        assert!(
            self.len_lo > 0.0 && self.len_hi >= self.len_lo,
            "invalid length range"
        );
        self.rates.validate();
        let region = Rect::square(self.side);
        let mut rng = seeded_rng(seed);
        let mut links = Vec::with_capacity(self.n);
        // Constant-time duplicate rejection (exact coordinate identity)
        // keeps generation O(N) — the sparse backend's large-n smoke
        // draws 10⁵ links through this loop.
        let mut senders: HashSet<(u64, u64)> = HashSet::with_capacity(self.n);
        let mut receivers: HashSet<(u64, u64)> = HashSet::with_capacity(self.n);
        while links.len() < self.n {
            let s = Point2::new(rng.gen_range(0.0..self.side), rng.gen_range(0.0..self.side));
            let d = rng.gen_range(self.len_lo..=self.len_hi);
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let r = s.offset_polar(d, theta);
            // Enforce the model's uniqueness assumptions; duplicates are
            // measure-zero but a seed could hit one.
            if senders.contains(&position_key(&s)) || receivers.contains(&position_key(&r)) {
                continue;
            }
            let id = LinkId(links.len() as u32);
            links.push(Link::new(id, s, r, self.rates.sample(&mut rng, d)));
            senders.insert(position_key(&s));
            receivers.insert(position_key(&r));
        }
        LinkSet::new(region, links)
    }
}

/// Clustered topology: senders grouped in Gaussian-ish clusters
/// (uniform disk around cluster centers) — models dense hot spots where
/// interference is concentrated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusteredGenerator {
    /// Region side length.
    pub side: f64,
    /// Number of clusters.
    pub clusters: usize,
    /// Links per cluster.
    pub links_per_cluster: usize,
    /// Radius of the disk each cluster's senders are drawn from.
    pub cluster_radius: f64,
    /// Shortest possible link.
    pub len_lo: f64,
    /// Longest possible link.
    pub len_hi: f64,
    /// Rate model.
    pub rates: RateModel,
}

impl TopologyGenerator for ClusteredGenerator {
    fn generate(&self, seed: u64) -> LinkSet {
        assert!(self.len_lo > 0.0 && self.len_hi >= self.len_lo);
        self.rates.validate();
        let region = Rect::square(self.side);
        let mut rng = seeded_rng(seed);
        let mut links = Vec::new();
        let mut senders: HashSet<(u64, u64)> = HashSet::new();
        let mut receivers: HashSet<(u64, u64)> = HashSet::new();
        for _ in 0..self.clusters {
            let center = Point2::new(rng.gen_range(0.0..self.side), rng.gen_range(0.0..self.side));
            let mut placed = 0;
            while placed < self.links_per_cluster {
                let rho = self.cluster_radius * rng.gen_range(0.0f64..1.0).sqrt();
                let phi = rng.gen_range(0.0..std::f64::consts::TAU);
                let s = center.offset_polar(rho, phi);
                let d = rng.gen_range(self.len_lo..=self.len_hi);
                let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                let r = s.offset_polar(d, theta);
                if senders.contains(&position_key(&s)) || receivers.contains(&position_key(&r)) {
                    continue;
                }
                let id = LinkId(links.len() as u32);
                links.push(Link::new(id, s, r, self.rates.sample(&mut rng, d)));
                senders.insert(position_key(&s));
                receivers.insert(position_key(&r));
                placed += 1;
            }
        }
        LinkSet::new(region, links)
    }
}

/// Regular lattice of links: senders on a grid, each transmitting to a
/// receiver offset by a fixed vector — the "barrage relay / sensor
/// field" style workload with a single length magnitude (`g(L) = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridGenerator {
    /// Lattice rows.
    pub rows: usize,
    /// Lattice columns.
    pub cols: usize,
    /// Spacing between adjacent senders.
    pub spacing: f64,
    /// Link length (receiver offset magnitude; must be < spacing/2 so
    /// endpoints stay distinct).
    pub link_length: f64,
    /// Rate model.
    pub rates: RateModel,
}

impl TopologyGenerator for GridGenerator {
    fn generate(&self, seed: u64) -> LinkSet {
        assert!(self.rows > 0 && self.cols > 0, "empty lattice");
        assert!(
            self.link_length > 0.0 && self.link_length < self.spacing / 2.0,
            "link length must be in (0, spacing/2)"
        );
        self.rates.validate();
        let mut rng = seeded_rng(seed);
        let side = (self.cols.max(self.rows)) as f64 * self.spacing;
        let region = Rect::square(side.max(self.spacing));
        let mut links = Vec::with_capacity(self.rows * self.cols);
        for row in 0..self.rows {
            for col in 0..self.cols {
                let s = Point2::new(
                    (col as f64 + 0.5) * self.spacing,
                    (row as f64 + 0.5) * self.spacing,
                );
                // Alternate receiver directions so receivers stay distinct.
                let theta = ((row + col) % 4) as f64 * std::f64::consts::FRAC_PI_2;
                let r = s.offset_polar(self.link_length, theta);
                let id = LinkId(links.len() as u32);
                links.push(Link::new(
                    id,
                    s,
                    r,
                    self.rates.sample(&mut rng, self.link_length),
                ));
            }
        }
        LinkSet::new(region, links)
    }
}

/// Blue-noise deployment: senders placed by Poisson-disk sampling with
/// a minimum separation — the planned-deployment counterpart of
/// [`UniformGenerator`] (no clumps, so interference is more uniform
/// across links).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonGenerator {
    /// Region side length.
    pub side: f64,
    /// Maximum number of links (fewer if the region saturates first).
    pub max_n: usize,
    /// Minimum separation between senders.
    pub min_separation: f64,
    /// Shortest possible link.
    pub len_lo: f64,
    /// Longest possible link.
    pub len_hi: f64,
    /// Rate model.
    pub rates: RateModel,
}

impl TopologyGenerator for PoissonGenerator {
    fn generate(&self, seed: u64) -> LinkSet {
        assert!(self.len_lo > 0.0 && self.len_hi >= self.len_lo);
        self.rates.validate();
        let region = Rect::square(self.side);
        let mut rng = seeded_rng(seed);
        let senders = fading_geom::poisson_disk(&mut rng, &region, self.min_separation, self.max_n);
        let mut links = Vec::with_capacity(senders.len());
        let mut receivers: HashSet<(u64, u64)> = HashSet::with_capacity(senders.len());
        for s in senders {
            loop {
                let d = rng.gen_range(self.len_lo..=self.len_hi);
                let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                let r = s.offset_polar(d, theta);
                if !receivers.contains(&position_key(&r)) {
                    let id = LinkId(links.len() as u32);
                    links.push(Link::new(id, s, r, self.rates.sample(&mut rng, d)));
                    receivers.insert(position_key(&r));
                    break;
                }
            }
        }
        LinkSet::new(region, links)
    }
}

/// A chain of links along a line ("highway"): high interference between
/// consecutive links, the classic worst case for shortest-first greedy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearGenerator {
    /// Number of links.
    pub n: usize,
    /// Distance between consecutive senders.
    pub spacing: f64,
    /// Link length (must be < spacing/2).
    pub link_length: f64,
    /// Rate model.
    pub rates: RateModel,
}

impl TopologyGenerator for LinearGenerator {
    fn generate(&self, seed: u64) -> LinkSet {
        assert!(self.n > 0, "empty chain");
        assert!(
            self.link_length > 0.0 && self.link_length < self.spacing / 2.0,
            "link length must be in (0, spacing/2)"
        );
        self.rates.validate();
        let mut rng = seeded_rng(seed);
        let side = (self.n as f64 + 1.0) * self.spacing;
        let region = Rect::new(
            Point2::new(0.0, -self.spacing),
            Point2::new(side, self.spacing),
        );
        let links = (0..self.n)
            .map(|i| {
                let s = Point2::new((i as f64 + 0.5) * self.spacing, 0.0);
                let r = Point2::new(s.x + self.link_length, 0.0);
                Link::new(
                    LinkId(i as u32),
                    s,
                    r,
                    self.rates.sample(&mut rng, self.link_length),
                )
            })
            .collect();
        LinkSet::new(region, links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_generator_respects_paper_setup() {
        let gen = UniformGenerator::paper(200);
        let ls = gen.generate(7);
        assert_eq!(ls.len(), 200);
        assert!(ls.has_uniform_rates());
        for l in ls.links() {
            let len = l.length();
            assert!(
                (5.0..=20.0 + 1e-9).contains(&len),
                "length {len} outside [5,20]"
            );
            assert!(l.sender.x >= 0.0 && l.sender.x <= 500.0);
            assert!(l.sender.y >= 0.0 && l.sender.y <= 500.0);
            assert_eq!(l.rate, 1.0);
        }
    }

    #[test]
    fn uniform_generator_is_deterministic_per_seed() {
        let gen = UniformGenerator::paper(50);
        assert_eq!(gen.generate(3), gen.generate(3));
        assert_ne!(gen.generate(3), gen.generate(4));
    }

    #[test]
    fn uniform_rate_model_spreads_rates() {
        let gen = UniformGenerator {
            rates: RateModel::Uniform { lo: 1.0, hi: 4.0 },
            ..UniformGenerator::paper(100)
        };
        let ls = gen.generate(9);
        assert!(!ls.has_uniform_rates());
        for l in ls.links() {
            assert!((1.0..=4.0).contains(&l.rate));
        }
    }

    #[test]
    fn clustered_generator_counts() {
        let gen = ClusteredGenerator {
            side: 500.0,
            clusters: 4,
            links_per_cluster: 25,
            cluster_radius: 30.0,
            len_lo: 5.0,
            len_hi: 20.0,
            rates: RateModel::Fixed(1.0),
        };
        let ls = gen.generate(1);
        assert_eq!(ls.len(), 100);
    }

    #[test]
    fn grid_generator_has_single_magnitude() {
        let gen = GridGenerator {
            rows: 5,
            cols: 6,
            spacing: 50.0,
            link_length: 10.0,
            rates: RateModel::Fixed(1.0),
        };
        let ls = gen.generate(0);
        assert_eq!(ls.len(), 30);
        assert_eq!(crate::diversity::length_diversity(&ls), 1);
        for l in ls.links() {
            assert!((l.length() - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_generator_is_a_chain() {
        let gen = LinearGenerator {
            n: 10,
            spacing: 30.0,
            link_length: 5.0,
            rates: RateModel::Fixed(1.0),
        };
        let ls = gen.generate(0);
        assert_eq!(ls.len(), 10);
        for w in ls.links().windows(2) {
            assert!((w[1].sender.x - w[0].sender.x - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn poisson_generator_enforces_separation() {
        let gen = PoissonGenerator {
            side: 300.0,
            max_n: 100,
            min_separation: 25.0,
            len_lo: 5.0,
            len_hi: 20.0,
            rates: RateModel::Fixed(1.0),
        };
        let ls = gen.generate(8);
        assert!(ls.len() > 20, "region should fit dozens of links");
        assert!(ls.len() <= 100);
        let senders = ls.sender_positions();
        for i in 0..senders.len() {
            for j in (i + 1)..senders.len() {
                assert!(
                    senders[i].distance(&senders[j]) >= 25.0 - 1e-9,
                    "senders {i},{j} too close"
                );
            }
        }
    }

    #[test]
    fn poisson_generator_is_deterministic() {
        let gen = PoissonGenerator {
            side: 200.0,
            max_n: 50,
            min_separation: 20.0,
            len_lo: 5.0,
            len_hi: 20.0,
            rates: RateModel::Fixed(1.0),
        };
        assert_eq!(gen.generate(3), gen.generate(3));
    }

    #[test]
    #[should_panic(expected = "link length must be in (0, spacing/2)")]
    fn grid_rejects_overlapping_links() {
        GridGenerator {
            rows: 2,
            cols: 2,
            spacing: 10.0,
            link_length: 6.0,
            rates: RateModel::Fixed(1.0),
        }
        .generate(0);
    }
}
