//! Instance (de)serialization.
//!
//! Instances are stored as JSON so experiment runs can be archived and
//! replayed exactly; EXPERIMENTS.md references instance files produced
//! through this module.

use crate::linkset::LinkSet;
use std::fs;
use std::io;
use std::path::Path;

/// Serializes a link set to pretty JSON.
pub fn to_json(links: &LinkSet) -> String {
    serde_json::to_string_pretty(links).expect("LinkSet serialization cannot fail")
}

/// Errors from reading an instance.
#[derive(Debug)]
pub enum LoadError {
    /// The text is not valid JSON for an instance.
    Parse(serde_json::Error),
    /// The parsed instance violates the model invariants.
    Invalid(crate::error::ValidationError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Parse(e) => write!(f, "parse error: {e}"),
            LoadError::Invalid(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Parses a link set from JSON, revalidating invariants.
///
/// Deserializes into the raw shape, then rebuilds through the fallible
/// validating constructor so hand-edited files can't violate the model
/// assumptions (and can't panic the caller either).
pub fn from_json(json: &str) -> Result<LinkSet, LoadError> {
    let raw: LinkSet = serde_json::from_str(json).map_err(LoadError::Parse)?;
    LinkSet::try_new(*raw.region(), raw.links().to_vec()).map_err(LoadError::Invalid)
}

/// Writes an instance to a file.
pub fn save(links: &LinkSet, path: &Path) -> io::Result<()> {
    fs::write(path, to_json(links))
}

/// Reads an instance from a file.
pub fn load(path: &Path) -> io::Result<LinkSet> {
    let text = fs::read_to_string(path)?;
    from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TopologyGenerator, UniformGenerator};

    #[test]
    fn json_roundtrip_preserves_instance() {
        let ls = UniformGenerator::paper(40).generate(5);
        let json = to_json(&ls);
        let back = from_json(&json).unwrap();
        assert_eq!(ls, back);
    }

    #[test]
    fn file_roundtrip() {
        let ls = UniformGenerator::paper(10).generate(6);
        let dir = std::env::temp_dir().join("fading_net_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("instance.json");
        save(&ls, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(ls, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(matches!(from_json("{not json"), Err(LoadError::Parse(_))));
    }

    #[test]
    fn invalid_instance_is_a_clean_error_not_a_panic() {
        // Hand-edited file with a zero-length link.
        let json = r#"{
            "region": {"x0": 0.0, "y0": 0.0, "x1": 10.0, "y1": 10.0},
            "links": [{
                "id": 0,
                "sender": {"x": 1.0, "y": 1.0},
                "receiver": {"x": 1.0, "y": 1.0},
                "rate": 1.0
            }]
        }"#;
        assert!(matches!(from_json(json), Err(LoadError::Invalid(_))));
    }

    #[test]
    fn load_missing_file_is_an_error() {
        assert!(load(Path::new("/nonexistent/fading/instance.json")).is_err());
    }
}
