//! Validation errors for fallible constructors.
//!
//! The panicking constructors (`Link::new`, `LinkSet::new`) are right
//! for experiment code where invalid geometry is a bug; services
//! ingesting *external* instance files need recoverable errors. The
//! `try_` constructors return these instead.

use crate::link::LinkId;

/// Why an instance failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// A link's sender and receiver coincide.
    ZeroLengthLink(LinkId),
    /// A link's rate is non-positive or non-finite.
    BadRate {
        /// The offending link.
        id: LinkId,
        /// The rate it carried.
        rate: f64,
    },
    /// Link ids are not the dense sequence `0..N`.
    MisnumberedId {
        /// Storage slot examined.
        slot: usize,
        /// Id found there.
        found: LinkId,
    },
    /// Two links share a sender position.
    DuplicateSender(LinkId, LinkId),
    /// Two links share a receiver position.
    DuplicateReceiver(LinkId, LinkId),
    /// A coordinate is NaN or infinite.
    NonFiniteCoordinate(LinkId),
    /// The instance holds more links than the `u32` id space can
    /// number. Ids double as arena indices throughout the interference
    /// substrate, so exceeding the space would silently truncate —
    /// rejected here instead.
    CapacityExceeded {
        /// Links the caller tried to store.
        requested: usize,
    },
    /// A link's transmit power scale is non-positive or non-finite.
    BadPowerScale {
        /// The offending link.
        id: LinkId,
        /// The scale it carried.
        scale: f64,
    },
    /// A scaled-power link reached a store without a per-link power
    /// profile: the store and the link must agree on whether power
    /// control is active (callers materialize the profile first; see
    /// `fading-core`'s `Problem::apply`).
    PowerProfileMismatch {
        /// The non-unit power scale that had no profile to extend.
        scale: f64,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::ZeroLengthLink(id) => {
                write!(f, "link {id} has zero length (sender == receiver)")
            }
            ValidationError::BadRate { id, rate } => {
                write!(f, "link {id} has invalid rate {rate}")
            }
            ValidationError::MisnumberedId { slot, found } => {
                write!(f, "storage slot {slot} holds id {found}, expected l{slot}")
            }
            ValidationError::DuplicateSender(a, b) => {
                write!(f, "links {a} and {b} share a sender position")
            }
            ValidationError::DuplicateReceiver(a, b) => {
                write!(f, "links {a} and {b} share a receiver position")
            }
            ValidationError::NonFiniteCoordinate(id) => {
                write!(f, "link {id} has a non-finite coordinate")
            }
            ValidationError::CapacityExceeded { requested } => {
                write!(
                    f,
                    "instance holds {requested} links, exceeding the u32 id space"
                )
            }
            ValidationError::BadPowerScale { id, scale } => {
                write!(f, "link {id} has invalid power scale {scale}")
            }
            ValidationError::PowerProfileMismatch { scale } => {
                write!(
                    f,
                    "power scale {scale} reached a store without a power profile"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_links() {
        let e = ValidationError::DuplicateSender(LinkId(3), LinkId(7));
        assert_eq!(e.to_string(), "links l3 and l7 share a sender position");
        let e = ValidationError::BadRate {
            id: LinkId(1),
            rate: -2.0,
        };
        assert!(e.to_string().contains("l1"));
        assert!(e.to_string().contains("-2"));
        let e = ValidationError::CapacityExceeded {
            requested: 4_294_967_296,
        };
        assert!(e.to_string().contains("4294967296"));
        assert!(e.to_string().contains("u32"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(ValidationError::ZeroLengthLink(LinkId(0)));
    }
}
