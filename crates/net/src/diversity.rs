//! Length diversity (Definition 4.1 of the paper).
//!
//! `G(L)` is the set of length magnitudes — the distinct values of
//! `⌊log₂(d(l)/δ)⌋` where `δ` is the shortest link length — and
//! `g(L) = |G(L)|` is the *link length diversity*. LDP builds one
//! (nested) link class per magnitude, and its approximation ratio is
//! `O(g(L))`.

use crate::linkset::LinkSet;

/// The sorted distinct magnitudes `h = ⌊log₂(d(l)/δ)⌋` present in `L`.
///
/// Returns an empty vector for an empty set. The smallest magnitude is
/// always 0 (the shortest link itself).
pub fn diversity_exponents(links: &LinkSet) -> Vec<u32> {
    let Some(delta) = links.min_length() else {
        return Vec::new();
    };
    let mut hs: Vec<u32> = links
        .links()
        .iter()
        .map(|l| magnitude(l.length(), delta))
        .collect();
    hs.sort_unstable();
    hs.dedup();
    hs
}

/// The link length diversity `g(L) = |G(L)|`.
pub fn length_diversity(links: &LinkSet) -> usize {
    diversity_exponents(links).len()
}

/// Magnitude of one length relative to the shortest: `⌊log₂(d/δ)⌋`.
///
/// Guards against floating-point log slightly undershooting at exact
/// powers of two (e.g. `log2(8δ/δ)` evaluating to `2.9999…`).
pub fn magnitude(length: f64, delta: f64) -> u32 {
    debug_assert!(length >= delta * (1.0 - 1e-12), "length below minimum");
    let ratio = length / delta;
    let h = ratio.log2().floor();
    let h = if (ratio / 2f64.powf(h + 1.0) - 1.0).abs() < 1e-12 {
        h + 1.0
    } else {
        h
    };
    h.max(0.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{Link, LinkId};
    use fading_geom::{Point2, Rect};

    fn set_with_lengths(lengths: &[f64]) -> LinkSet {
        let links = lengths
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                let y = i as f64 * 1000.0; // far apart, distinct endpoints
                Link::new(
                    LinkId(i as u32),
                    Point2::new(0.0, y),
                    Point2::new(len, y),
                    1.0,
                )
            })
            .collect();
        LinkSet::new(Rect::square(1e6), links)
    }

    #[test]
    fn uniform_lengths_have_diversity_one() {
        let ls = set_with_lengths(&[5.0, 5.0, 5.0]);
        assert_eq!(length_diversity(&ls), 1);
        assert_eq!(diversity_exponents(&ls), vec![0]);
    }

    #[test]
    fn paper_evaluation_range_has_diversity_two() {
        // Lengths in [5, 20): magnitudes ⌊log₂(d/5)⌋ ∈ {0, 1}.
        let ls = set_with_lengths(&[5.0, 7.0, 9.9, 10.0, 15.0, 19.9]);
        assert_eq!(diversity_exponents(&ls), vec![0, 1]);
        assert_eq!(length_diversity(&ls), 2);
    }

    #[test]
    fn magnitude_boundaries() {
        assert_eq!(magnitude(5.0, 5.0), 0);
        assert_eq!(magnitude(9.999, 5.0), 0);
        assert_eq!(magnitude(10.0, 5.0), 1);
        assert_eq!(magnitude(19.999, 5.0), 1);
        assert_eq!(magnitude(20.0, 5.0), 2);
        assert_eq!(magnitude(40.0, 5.0), 3);
    }

    #[test]
    fn sparse_magnitudes_are_deduplicated() {
        let ls = set_with_lengths(&[1.0, 1.5, 64.0, 65.0]);
        assert_eq!(diversity_exponents(&ls), vec![0, 6]);
        assert_eq!(length_diversity(&ls), 2);
    }

    #[test]
    fn empty_set() {
        let ls = LinkSet::new(Rect::square(1.0), vec![]);
        assert_eq!(length_diversity(&ls), 0);
        assert!(diversity_exponents(&ls).is_empty());
    }

    #[test]
    fn diversity_grows_logarithmically_with_length_ratio() {
        let lengths: Vec<f64> = (0..10).map(|i| 2f64.powi(i)).collect();
        let ls = set_with_lengths(&lengths);
        assert_eq!(length_diversity(&ls), 10);
    }
}
