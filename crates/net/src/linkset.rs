//! Sets of links — the scheduling instance.

use crate::link::{Link, LinkId};
use fading_geom::{Point2, Rect};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Hashable identity key of a coordinate pair: exact bit patterns with
/// `-0.0` normalized onto `+0.0`, so two points compare equal iff their
/// coordinates are numerically equal. Lets the duplicate-position
/// validation run in `O(N)` instead of the former `O(N²)` pair scan —
/// at the 10⁵-link scale the sparse interference backend targets, the
/// pair scan alone would dominate instance construction. Public so
/// incremental callers (e.g. `fading-core`'s batch mutation path) can
/// maintain their own position indexes with the exact same equality.
#[inline]
pub fn position_key(p: &Point2) -> (u64, u64) {
    ((p.x + 0.0).to_bits(), (p.y + 0.0).to_bits())
}

/// A scheduling instance: `N` links inside a deployment region.
///
/// Invariants enforced at construction (mirroring Section II of the
/// paper): senders are pairwise distinct, receivers are pairwise
/// distinct, every link has positive length and rate, and link ids equal
/// storage indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSet {
    region: Rect,
    links: Vec<Link>,
}

impl LinkSet {
    /// Builds a validated link set.
    ///
    /// # Panics
    /// Panics if ids are not `0..N` in order, or two senders (or two
    /// receivers) coincide. (A sender may coincide with a *different*
    /// link's receiver; the model only forbids shared senders/receivers.)
    /// Use [`LinkSet::try_new`] for recoverable validation of external
    /// data.
    pub fn new(region: Rect, links: Vec<Link>) -> Self {
        match Self::try_new(region, links) {
            Ok(set) => set,
            Err(e) => panic!("invalid link set: {e}"),
        }
    }

    /// Fallible constructor: returns the first validation failure
    /// instead of panicking.
    pub fn try_new(region: Rect, links: Vec<Link>) -> Result<Self, crate::error::ValidationError> {
        use crate::error::ValidationError as E;
        // Ids double as u32 arena indices in the interference stores;
        // `len as u32` below would silently truncate past this point.
        if links.len() > u32::MAX as usize {
            return Err(E::CapacityExceeded {
                requested: links.len(),
            });
        }
        for (i, l) in links.iter().enumerate() {
            if l.id.index() != i {
                return Err(E::MisnumberedId {
                    slot: i,
                    found: l.id,
                });
            }
            if !(l.sender.x.is_finite()
                && l.sender.y.is_finite()
                && l.receiver.x.is_finite()
                && l.receiver.y.is_finite())
            {
                return Err(E::NonFiniteCoordinate(l.id));
            }
            // Links deserialized from external files bypass Link::new's
            // checks; re-validate them here.
            if l.sender.distance_sq(&l.receiver) == 0.0 {
                return Err(E::ZeroLengthLink(l.id));
            }
            if !(l.rate.is_finite() && l.rate > 0.0) {
                return Err(E::BadRate {
                    id: l.id,
                    rate: l.rate,
                });
            }
        }
        let mut senders: HashMap<(u64, u64), LinkId> = HashMap::with_capacity(links.len());
        let mut receivers: HashMap<(u64, u64), LinkId> = HashMap::with_capacity(links.len());
        for l in &links {
            if let Some(&first) = senders.get(&position_key(&l.sender)) {
                return Err(E::DuplicateSender(first, l.id));
            }
            senders.insert(position_key(&l.sender), l.id);
            if let Some(&first) = receivers.get(&position_key(&l.receiver)) {
                return Err(E::DuplicateReceiver(first, l.id));
            }
            receivers.insert(position_key(&l.receiver), l.id);
        }
        Ok(Self { region, links })
    }

    /// Deployment region.
    pub fn region(&self) -> &Rect {
        &self.region
    }

    /// Number of links `N`.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the instance has no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The link with the given id.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// All links in id order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Iterator over link ids `0..N`.
    pub fn ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Distance `d_{i,j}` from sender of link `i` to receiver of link `j`.
    /// For `i == j` this is the link length `d_{j,j}`.
    #[inline]
    pub fn sender_receiver_distance(&self, i: LinkId, j: LinkId) -> f64 {
        self.links[i.index()]
            .sender
            .distance(&self.links[j.index()].receiver)
    }

    /// Length of link `i` (`d_{i,i}`).
    #[inline]
    pub fn length(&self, i: LinkId) -> f64 {
        self.links[i.index()].length()
    }

    /// Shortest link length `δ` (`None` for an empty set).
    pub fn min_length(&self) -> Option<f64> {
        self.links.iter().map(Link::length).min_by(f64::total_cmp)
    }

    /// Longest link length (`None` for an empty set).
    pub fn max_length(&self) -> Option<f64> {
        self.links.iter().map(Link::length).max_by(f64::total_cmp)
    }

    /// Sum of all rates — the upper bound on any schedule's utility.
    pub fn total_rate(&self) -> f64 {
        self.links.iter().map(|l| l.rate).sum()
    }

    /// Whether every link carries the same rate (RLE's special case).
    pub fn has_uniform_rates(&self) -> bool {
        match self.links.split_first() {
            None => true,
            Some((first, rest)) => rest.iter().all(|l| l.rate == first.rate),
        }
    }

    /// Sender positions in id order (for spatial indexing).
    pub fn sender_positions(&self) -> Vec<Point2> {
        self.links.iter().map(|l| l.sender).collect()
    }

    /// Receiver positions in id order.
    pub fn receiver_positions(&self) -> Vec<Point2> {
        self.links.iter().map(|l| l.receiver).collect()
    }

    /// The same links with new rates (id order). Geometry is untouched,
    /// so validation reduces to the rate checks.
    ///
    /// # Panics
    /// Panics on length mismatch or a non-positive/non-finite rate.
    pub fn with_rates(&self, rates: &[f64]) -> LinkSet {
        assert_eq!(rates.len(), self.links.len(), "rate vector length mismatch");
        let links = self
            .links
            .iter()
            .zip(rates)
            .map(|(l, &rate)| Link::new(l.id, l.sender, l.receiver, rate))
            .collect();
        Self {
            region: self.region,
            links,
        }
    }

    /// Overwrites every rate in place (id order) — the allocation-free
    /// counterpart of [`with_rates`](Self::with_rates) for loops that
    /// refresh weights every slot (e.g. MaxWeight queue lengths over a
    /// reused sub-problem). Geometry is untouched, so validation
    /// reduces to the rate checks.
    ///
    /// # Panics
    /// Panics on length mismatch or a non-positive/non-finite rate.
    pub fn set_rates(&mut self, rates: &[f64]) {
        assert_eq!(rates.len(), self.links.len(), "rate vector length mismatch");
        for (l, &rate) in self.links.iter_mut().zip(rates) {
            assert!(
                rate.is_finite() && rate > 0.0,
                "link {} has invalid rate {rate}",
                l.id
            );
            l.rate = rate;
        }
    }

    /// Appends a link whose positions the caller has *already* checked
    /// for uniqueness against every stored sender/receiver (e.g. via
    /// the position index `fading-core`'s mutation batches maintain).
    /// Runs the same scalar checks as [`append`](Self::append) —
    /// capacity, finite coordinates, nonzero length, positive rate —
    /// but skips the `O(N)` duplicate-position scan, so a `k`-link
    /// batch costs `O(k)` instead of `O(kN)`.
    ///
    /// Appending a duplicate position through this method violates the
    /// set's invariant (two links sharing a sender/receiver); it is the
    /// caller's contract to prevent that.
    pub fn append_prechecked(
        &mut self,
        sender: Point2,
        receiver: Point2,
        rate: f64,
    ) -> Result<LinkId, crate::error::ValidationError> {
        use crate::error::ValidationError as E;
        if self.links.len() >= u32::MAX as usize {
            return Err(E::CapacityExceeded {
                requested: self.links.len() + 1,
            });
        }
        let id = LinkId(self.links.len() as u32);
        if !(sender.x.is_finite()
            && sender.y.is_finite()
            && receiver.x.is_finite()
            && receiver.y.is_finite())
        {
            return Err(E::NonFiniteCoordinate(id));
        }
        if sender.distance_sq(&receiver) == 0.0 {
            return Err(E::ZeroLengthLink(id));
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(E::BadRate { id, rate });
        }
        self.links.push(Link::new(id, sender, receiver, rate));
        Ok(id)
    }

    /// Appends a link in place and returns its id (`len() - 1` after
    /// the call). The caller supplies sender/receiver/rate; the id is
    /// assigned here so the dense `id == index` invariant cannot be
    /// violated. Runs the same per-link checks as [`try_new`]
    /// (finite coordinates, nonzero length, positive rate) plus an
    /// `O(N)` duplicate-position scan against existing links.
    ///
    /// Incremental counterpart of rebuilding via [`new`](Self::new)
    /// over the extended link vector.
    pub fn append(
        &mut self,
        sender: Point2,
        receiver: Point2,
        rate: f64,
    ) -> Result<LinkId, crate::error::ValidationError> {
        use crate::error::ValidationError as E;
        // Appending at len == u32::MAX would wrap the new id to 0.
        if self.links.len() >= u32::MAX as usize {
            return Err(E::CapacityExceeded {
                requested: self.links.len() + 1,
            });
        }
        let id = LinkId(self.links.len() as u32);
        if !(sender.x.is_finite()
            && sender.y.is_finite()
            && receiver.x.is_finite()
            && receiver.y.is_finite())
        {
            return Err(E::NonFiniteCoordinate(id));
        }
        if sender.distance_sq(&receiver) == 0.0 {
            return Err(E::ZeroLengthLink(id));
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(E::BadRate { id, rate });
        }
        let (ks, kr) = (position_key(&sender), position_key(&receiver));
        for l in &self.links {
            if position_key(&l.sender) == ks {
                return Err(E::DuplicateSender(l.id, id));
            }
            if position_key(&l.receiver) == kr {
                return Err(E::DuplicateReceiver(l.id, id));
            }
        }
        self.links.push(Link::new(id, sender, receiver, rate));
        Ok(id)
    }

    /// Removes link `id` in place with `Vec::swap_remove` semantics:
    /// the link previously holding the largest id is renumbered to
    /// `id`, keeping ids dense (`0..N`). Returns the *old* id of the
    /// renumbered link (`== id` when removing the tail), so callers
    /// can mirror the renumbering in their own per-link state.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn swap_remove(&mut self, id: LinkId) -> LinkId {
        let last = LinkId(self.links.len() as u32 - 1);
        self.links.swap_remove(id.index());
        if id != last {
            self.links[id.index()].id = id;
        }
        last
    }

    /// A new instance containing only `keep` (ids are renumbered to be
    /// dense; the returned mapping gives `new id → old id`).
    pub fn restrict(&self, keep: &[LinkId]) -> (LinkSet, Vec<LinkId>) {
        let mut mapping = Vec::with_capacity(keep.len());
        let links = keep
            .iter()
            .enumerate()
            .map(|(new_idx, &old)| {
                mapping.push(old);
                let l = self.link(old);
                Link::new(LinkId(new_idx as u32), l.sender, l.receiver, l.rate)
            })
            .collect();
        (LinkSet::new(self.region, links), mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Segment = ((f64, f64), (f64, f64));

    fn mk(points: &[Segment]) -> LinkSet {
        let links = points
            .iter()
            .enumerate()
            .map(|(i, &(s, r))| Link::new(LinkId(i as u32), s.into(), r.into(), 1.0))
            .collect();
        LinkSet::new(Rect::square(100.0), links)
    }

    #[test]
    fn basic_accessors() {
        let ls = mk(&[((0.0, 0.0), (3.0, 4.0)), ((10.0, 10.0), (10.0, 12.0))]);
        assert_eq!(ls.len(), 2);
        assert_eq!(ls.length(LinkId(0)), 5.0);
        assert_eq!(ls.length(LinkId(1)), 2.0);
        assert_eq!(ls.min_length(), Some(2.0));
        assert_eq!(ls.max_length(), Some(5.0));
        assert_eq!(ls.total_rate(), 2.0);
        assert!(ls.has_uniform_rates());
    }

    #[test]
    fn cross_distances() {
        let ls = mk(&[((0.0, 0.0), (1.0, 0.0)), ((10.0, 0.0), (11.0, 0.0))]);
        // sender 0 → receiver 1
        assert_eq!(ls.sender_receiver_distance(LinkId(0), LinkId(1)), 11.0);
        // sender 1 → receiver 0
        assert_eq!(ls.sender_receiver_distance(LinkId(1), LinkId(0)), 9.0);
        // diagonal equals link length
        assert_eq!(
            ls.sender_receiver_distance(LinkId(0), LinkId(0)),
            ls.length(LinkId(0))
        );
    }

    #[test]
    fn empty_set_is_fine() {
        let ls = LinkSet::new(Rect::square(1.0), vec![]);
        assert!(ls.is_empty());
        assert_eq!(ls.min_length(), None);
        assert!(ls.has_uniform_rates());
        assert_eq!(ls.total_rate(), 0.0);
    }

    #[test]
    fn non_uniform_rates_detected() {
        let links = vec![
            Link::new(LinkId(0), Point2::origin(), Point2::new(1.0, 0.0), 1.0),
            Link::new(LinkId(1), Point2::new(5.0, 5.0), Point2::new(6.0, 5.0), 2.0),
        ];
        let ls = LinkSet::new(Rect::square(10.0), links);
        assert!(!ls.has_uniform_rates());
    }

    #[test]
    fn restrict_renumbers_and_maps() {
        let ls = mk(&[
            ((0.0, 0.0), (1.0, 0.0)),
            ((10.0, 0.0), (11.0, 0.0)),
            ((20.0, 0.0), (21.0, 0.0)),
        ]);
        let (sub, map) = ls.restrict(&[LinkId(2), LinkId(0)]);
        assert_eq!(sub.len(), 2);
        assert_eq!(map, vec![LinkId(2), LinkId(0)]);
        assert_eq!(sub.link(LinkId(0)).sender, Point2::new(20.0, 0.0));
        assert_eq!(sub.link(LinkId(1)).sender, Point2::new(0.0, 0.0));
    }

    #[test]
    fn append_validates_and_numbers() {
        use crate::error::ValidationError;
        let mut ls = mk(&[((0.0, 0.0), (1.0, 0.0)), ((10.0, 0.0), (11.0, 0.0))]);
        let id = ls
            .append(Point2::new(20.0, 0.0), Point2::new(21.0, 0.0), 2.0)
            .unwrap();
        assert_eq!(id, LinkId(2));
        assert_eq!(ls.len(), 3);
        assert_eq!(ls.link(id).rate, 2.0);
        // Duplicate sender position is rejected, set unchanged.
        assert_eq!(
            ls.append(Point2::origin(), Point2::new(5.0, 5.0), 1.0),
            Err(ValidationError::DuplicateSender(LinkId(0), LinkId(3)))
        );
        assert_eq!(ls.len(), 3);
        assert!(matches!(
            ls.append(Point2::new(7.0, 7.0), Point2::new(7.0, 7.0), 1.0),
            Err(ValidationError::ZeroLengthLink(_))
        ));
        // The appended set is exactly what a batch build produces.
        let rebuilt = LinkSet::new(*ls.region(), ls.links().to_vec());
        assert_eq!(ls, rebuilt);
    }

    #[test]
    fn swap_remove_renumbers_the_tail() {
        let mut ls = mk(&[
            ((0.0, 0.0), (1.0, 0.0)),
            ((10.0, 0.0), (11.0, 0.0)),
            ((20.0, 0.0), (21.0, 0.0)),
        ]);
        let moved = ls.swap_remove(LinkId(0));
        assert_eq!(moved, LinkId(2));
        assert_eq!(ls.len(), 2);
        assert_eq!(ls.link(LinkId(0)).sender, Point2::new(20.0, 0.0));
        assert_eq!(ls.link(LinkId(0)).id, LinkId(0));
        // Removing the tail moves nothing.
        let moved = ls.swap_remove(LinkId(1));
        assert_eq!(moved, LinkId(1));
        assert_eq!(ls.len(), 1);
        // Still a valid dense set.
        assert!(LinkSet::try_new(*ls.region(), ls.links().to_vec()).is_ok());
    }

    #[test]
    fn try_new_reports_the_failure() {
        use crate::error::ValidationError;
        // Duplicate sender.
        let links = vec![
            Link::new(LinkId(0), Point2::origin(), Point2::new(1.0, 0.0), 1.0),
            Link::new(LinkId(1), Point2::origin(), Point2::new(0.0, 1.0), 1.0),
        ];
        assert_eq!(
            LinkSet::try_new(Rect::square(10.0), links),
            Err(ValidationError::DuplicateSender(LinkId(0), LinkId(1)))
        );
        // Misnumbered id.
        let links = vec![Link::new(
            LinkId(2),
            Point2::origin(),
            Point2::new(1.0, 0.0),
            1.0,
        )];
        assert!(matches!(
            LinkSet::try_new(Rect::square(10.0), links),
            Err(ValidationError::MisnumberedId { slot: 0, .. })
        ));
        // Valid set round-trips.
        let links = vec![Link::new(
            LinkId(0),
            Point2::origin(),
            Point2::new(1.0, 0.0),
            1.0,
        )];
        assert!(LinkSet::try_new(Rect::square(10.0), links).is_ok());
    }

    #[test]
    fn try_new_catches_serde_smuggled_invalid_links() {
        // Deserialization bypasses Link::new; try_new must catch the
        // resulting zero-length / bad-rate links.
        let json = r#"{
            "region": {"x0": 0.0, "y0": 0.0, "x1": 10.0, "y1": 10.0},
            "links": [{
                "id": 0,
                "sender": {"x": 1.0, "y": 1.0},
                "receiver": {"x": 1.0, "y": 1.0},
                "rate": 1.0
            }]
        }"#;
        let raw: LinkSet = serde_json::from_str(json).unwrap();
        assert!(matches!(
            LinkSet::try_new(*raw.region(), raw.links().to_vec()),
            Err(crate::error::ValidationError::ZeroLengthLink(_))
        ));
    }

    #[test]
    #[should_panic(expected = "expected l0")]
    fn rejects_misnumbered_ids() {
        let links = vec![Link::new(
            LinkId(3),
            Point2::origin(),
            Point2::new(1.0, 0.0),
            1.0,
        )];
        LinkSet::new(Rect::square(10.0), links);
    }

    #[test]
    #[should_panic(expected = "share a sender position")]
    fn rejects_shared_sender() {
        let links = vec![
            Link::new(LinkId(0), Point2::origin(), Point2::new(1.0, 0.0), 1.0),
            Link::new(LinkId(1), Point2::origin(), Point2::new(0.0, 1.0), 1.0),
        ];
        LinkSet::new(Rect::square(10.0), links);
    }

    #[test]
    #[should_panic(expected = "share a receiver position")]
    fn rejects_shared_receiver() {
        let links = vec![
            Link::new(LinkId(0), Point2::origin(), Point2::new(1.0, 0.0), 1.0),
            Link::new(LinkId(1), Point2::new(2.0, 0.0), Point2::new(1.0, 0.0), 1.0),
        ];
        LinkSet::new(Rect::square(10.0), links);
    }
}
