//! Network substrate for the fading-rls workspace.
//!
//! A scheduling instance is a [`LinkSet`]: `N` sender→receiver pairs in
//! a rectangular region, each with a data rate. The paper's evaluation
//! instance (uniform senders in a 500×500 square, receivers at distance
//! U\[5,20\] in a random direction) is [`generator::UniformGenerator`];
//! further generators (clustered, lattice, linear) exercise the
//! algorithms on qualitatively different geometries.
//!
//! [`diversity`] implements Definition 4.1 (length diversity `g(L)`),
//! which both drives LDP's class construction and appears in its
//! approximation guarantee.

pub mod diversity;
pub mod error;
pub mod generator;
pub mod io;
pub mod link;
pub mod linkset;
pub mod mobility;
pub mod stats;

pub use diversity::{diversity_exponents, length_diversity};
pub use error::ValidationError;
pub use generator::{
    ClusteredGenerator, GridGenerator, LinearGenerator, PoissonGenerator, RateModel,
    TopologyGenerator, UniformGenerator,
};
pub use link::{Link, LinkId};
pub use linkset::{position_key, LinkSet};
pub use mobility::RandomWaypoint;
pub use stats::{instance_stats, InstanceStats};
