//! Quickstart: build the paper's workload, schedule one slot with each
//! algorithm, verify the fading guarantee, and Monte-Carlo the channel.
//!
//! Run with: `cargo run --release --example quickstart`

use fading_rls::prelude::*;

fn main() {
    // The paper's Section V workload: N links in a 500×500 field, each
    // receiver 5–20 units from its sender, unit data rates.
    let links = UniformGenerator::paper(300).generate(42);
    println!(
        "instance: {} links, lengths {:.1}..{:.1}, diversity g(L) = {}",
        links.len(),
        links.min_length().unwrap(),
        links.max_length().unwrap(),
        fading_rls::net::length_diversity(&links),
    );

    // α = 3, γ_th = 1, ε = 0.01 (the paper's defaults).
    let problem = Problem::paper(links, 3.0);
    println!(
        "channel: α = {}, γ_th = {}, ε = {} (γ_ε = {:.5})",
        problem.params().alpha,
        problem.params().gamma_th,
        problem.epsilon(),
        problem.gamma_eps()
    );
    println!();

    // Schedule one time slot with each algorithm.
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Ldp::new()),
        Box::new(Rle::new()),
        Box::new(Dls::new()),
        Box::new(GreedyRate),
        Box::new(ApproxLogN),
        Box::new(ApproxDiversity::new()),
    ];
    println!(
        "{:<18} {:>7} {:>12} {:>14} {:>16}",
        "algorithm", "links", "feasible?", "E[failed]/slot", "E[throughput]"
    );
    for s in &schedulers {
        let schedule = s.schedule(&problem);
        let feasible = is_feasible(&problem, &schedule);
        // 2000 Rayleigh realizations of the slot.
        let stats = simulate_many(&problem, &schedule, 2000, 7);
        println!(
            "{:<18} {:>7} {:>12} {:>14.3} {:>16.2}",
            s.name(),
            schedule.len(),
            if feasible { "yes" } else { "NO" },
            stats.failed.mean,
            stats.throughput.mean,
        );
    }
    println!();
    println!("LDP/RLE/DLS/GreedyRate satisfy Corollary 3.1 (every link ≥ 99% reliable);");
    println!("the deterministic-SINR baselines schedule more links but shed them to fading.");
}
