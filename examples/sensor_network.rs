//! Sensor-field convergecast: the uniform-rate scenario that motivates
//! RLE (Section IV-B cites periodic sensor reporting with equal rates).
//!
//! A lattice of sensors each reports to a nearby aggregator over a
//! fixed-length link. We (1) schedule as much as possible per slot with
//! RLE, (2) drain the whole field with the multi-slot extension, and
//! (3) verify the per-slot reliability empirically.
//!
//! Run with: `cargo run --release --example sensor_network`

use fading_rls::prelude::*;

fn main() {
    // 12×12 sensors, 40 m pitch, 8 m report links — one length class.
    let field = GridGenerator {
        rows: 12,
        cols: 12,
        spacing: 40.0,
        link_length: 8.0,
        rates: RateModel::Fixed(1.0),
    };
    let links = field.generate(7);
    println!(
        "sensor field: {} links on a lattice, g(L) = {}",
        links.len(),
        fading_rls::net::length_diversity(&links)
    );

    let problem = Problem::paper(links, 3.0);
    let rle = Rle::new();

    // One slot: how many sensors can report simultaneously?
    let slot = rle.schedule(&problem);
    println!(
        "single slot: {} of {} sensors transmit (feasible: {})",
        slot.len(),
        problem.len(),
        is_feasible(&problem, &slot)
    );

    // Drain the entire field: the paper's future-work objective.
    let plan = schedule_all(&problem, &rle);
    println!(
        "full drain: {} slots, {:.1} links/slot on average",
        plan.num_slots(),
        problem.len() as f64 / plan.num_slots() as f64
    );

    // Reliability check: simulate each slot and count failures.
    let mut total_failed = 0.0;
    for (i, s) in plan.slots().iter().enumerate() {
        let stats = simulate_many(&problem, s, 1000, 100 + i as u64);
        total_failed += stats.failed.mean;
    }
    println!(
        "empirical failures across all slots: {:.3} per round (target ≤ {:.2})",
        total_failed,
        problem.epsilon() * problem.len() as f64
    );

    // Compare against LDP on the same field.
    let ldp_plan = schedule_all(&problem, &Ldp::new());
    println!(
        "LDP drains the field in {} slots (RLE: {})",
        ldp_plan.num_slots(),
        plan.num_slots()
    );
}
