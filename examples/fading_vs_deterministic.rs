//! The paper's central claim, end to end: a schedule that is feasible
//! under the deterministic SINR model can be unreliable under Rayleigh
//! fading — and the closed form of Theorem 3.1 predicts exactly how
//! unreliable.
//!
//! Run with: `cargo run --release --example fading_vs_deterministic`

use fading_rls::prelude::*;

fn main() {
    let links = UniformGenerator::paper(400).generate(2024);
    let problem = Problem::paper(links, 3.0);

    // Schedule with the deterministic-SINR baseline [14].
    let schedule = ApproxLogN.schedule(&problem);
    println!(
        "ApproxLogN scheduled {} links (deterministic SINR ≥ γ_th for all of them)",
        schedule.len()
    );

    // Theorem 3.1: per-link success probability under Rayleigh fading.
    let report = FeasibilityReport::evaluate(&problem, &schedule);
    let mut predicted_failures = 0.0;
    let mut unreliable = 0;
    for e in report.entries() {
        predicted_failures += 1.0 - e.success_probability;
        if !e.feasible {
            unreliable += 1;
        }
    }
    println!(
        "closed form (Thm 3.1): {unreliable} links below the 1−ε target, \
         E[failures/slot] = {predicted_failures:.2}"
    );

    // Monte-Carlo the channel and compare with the prediction.
    let stats = simulate_many(&problem, &schedule, 5000, 99);
    println!(
        "simulated 5000 Rayleigh slots: {:.2} failures/slot (± {:.2})",
        stats.failed.mean, stats.failed.ci95
    );

    // Now the fading-resistant algorithms on the same instance.
    println!();
    for s in [&Ldp::new() as &dyn Scheduler, &Rle::new()] {
        let sched = s.schedule(&problem);
        let st = simulate_many(&problem, &sched, 5000, 101);
        println!(
            "{:<4} schedules {:>3} links, {:.3} failures/slot — every link ≥ {:.0}% reliable",
            s.name(),
            sched.len(),
            st.failed.mean,
            100.0 * (1.0 - problem.epsilon())
        );
    }
    println!();
    println!("The baseline delivers more links per slot but breaks its reliability");
    println!("contract; LDP/RLE trade concurrency for a guaranteed error rate.");
}
