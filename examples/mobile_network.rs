//! Mobile network: how often must we re-schedule?
//!
//! The paper motivates fading with mobility; this example makes the
//! mobility explicit. Vehicle-mounted links move by random waypoint; a
//! schedule computed at t = 0 slowly stops matching the interference
//! geometry it was designed for. We track the analytic expected
//! failures of the stale schedule (Theorem 3.1 — exact) and compare
//! against re-running the decentralized DLS protocol every k steps.
//!
//! Run with: `cargo run --release --example mobile_network`

use fading_rls::core::FeasibilityReport;
use fading_rls::net::{instance_stats, RandomWaypoint};
use fading_rls::prelude::*;

fn expected_failures(p: &Problem, s: &Schedule) -> f64 {
    FeasibilityReport::evaluate(p, s)
        .entries()
        .iter()
        .map(|e| 1.0 - e.success_probability)
        .sum()
}

fn main() {
    let links = UniformGenerator::paper(250).generate(77);
    let stats = instance_stats(&links);
    println!(
        "fleet: {} links, mean length {:.1}, mean nearest sender {:.1}, g(L) = {}",
        stats.n, stats.mean_length, stats.mean_nearest_sender, stats.diversity
    );

    let problem = Problem::paper(links.clone(), 3.0);
    let scheduler = Dls::new(); // decentralized: cheap to re-run in the field
    let stale = scheduler.schedule(&problem);
    let budget = problem.epsilon() * stale.len() as f64;
    println!(
        "t=0 schedule: {} links, E[failures] {:.4} (budget {budget:.3})",
        stale.len(),
        expected_failures(&problem, &stale)
    );
    println!();

    let speed = 8.0;
    let steps = 24;
    let refresh_every = 8;
    let mut mobility = RandomWaypoint::new(&links, speed, speed, 3);
    let mut refreshed = stale.clone();
    println!(
        "{:>4} {:>16} {:>22}",
        "t", "stale E[fail]", "refreshed(k=8) E[fail]"
    );
    for t in 1..=steps {
        let moved = mobility.step(1.0);
        let now = Problem::new(moved, *problem.params(), problem.epsilon());
        if t % refresh_every == 0 {
            refreshed = scheduler.schedule(&now);
        }
        let stale_fail = expected_failures(&now, &stale);
        let fresh_fail = expected_failures(&now, &refreshed);
        let mark = if stale_fail > budget {
            " <- over budget"
        } else {
            ""
        };
        println!("{t:>4} {stale_fail:>16.4} {fresh_fail:>22.4}{mark}");
    }
    println!();
    println!("Re-running DLS every {refresh_every} steps keeps the expected failures near");
    println!("the design budget; the stale schedule drifts out of its guarantee.");
}
