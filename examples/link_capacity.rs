//! Link capacity analysis: the generalized Theorem 3.1 in action.
//!
//! For one scheduled link we print (a) the full SINR outage curve
//! (closed form), (b) the ergodic Shannon rate by quadrature vs a
//! Monte-Carlo estimate, and (c) how the fixed-rate reliability target
//! trades off against the rate-adaptive view across the schedule.
//!
//! Run with: `cargo run --release --example link_capacity`

use fading_rls::channel::{ergodic_capacity, outage_probability, sinr_ccdf};
use fading_rls::math::{seeded_rng, OnlineStats};
use fading_rls::prelude::*;

fn main() {
    let links = UniformGenerator::paper(300).generate(5);
    let problem = Problem::paper(links, 3.0);
    let schedule = Rle::new().schedule(&problem);
    println!(
        "RLE scheduled {} links; analyzing the first one.\n",
        schedule.len()
    );

    let j = schedule.ids()[0];
    let d_jj = problem.links().length(j);
    let interferers: Vec<f64> = schedule
        .iter()
        .filter(|&i| i != j)
        .map(|i| problem.links().sender_receiver_distance(i, j))
        .collect();

    // (a) Outage curve.
    println!(
        "outage curve for {j} (length {d_jj:.1}, {} interferers):",
        interferers.len()
    );
    for db in [-10.0, -5.0, 0.0, 5.0, 10.0, 20.0, 30.0] {
        let x = 10f64.powf(db / 10.0);
        println!(
            "  Pr(SINR < {db:>5.1} dB) = {:.6}",
            outage_probability(problem.params(), d_jj, &interferers, x)
        );
    }
    let at_gamma = sinr_ccdf(
        problem.params(),
        d_jj,
        &interferers,
        problem.params().gamma_th,
    );
    println!(
        "  success at γ_th: {at_gamma:.6} (target ≥ {:.2})\n",
        1.0 - problem.epsilon()
    );

    // (b) Ergodic capacity: quadrature vs Monte-Carlo.
    let analytic = ergodic_capacity(problem.params(), d_jj, &interferers);
    let channel = problem.channel();
    let mut rng = seeded_rng(42);
    let mut stats = OnlineStats::new();
    for _ in 0..100_000 {
        let signal = channel.sample_gain(&mut rng, d_jj);
        let interference: f64 = interferers
            .iter()
            .map(|&d| channel.sample_gain(&mut rng, d))
            .sum();
        stats.push((1.0 + signal / interference).log2());
    }
    println!(
        "ergodic Shannon rate: quadrature {analytic:.3} bit/s/Hz, Monte-Carlo {:.3}\n",
        stats.mean()
    );

    // (c) Whole-schedule view.
    let mut total = 0.0;
    let mut worst = f64::INFINITY;
    for j in schedule.iter() {
        let d = problem.links().length(j);
        let ds: Vec<f64> = schedule
            .iter()
            .filter(|&i| i != j)
            .map(|i| problem.links().sender_receiver_distance(i, j))
            .collect();
        if ds.is_empty() {
            continue;
        }
        let c = ergodic_capacity(problem.params(), d, &ds);
        total += c;
        worst = worst.min(c);
    }
    println!(
        "schedule totals: fixed-rate {:.0} (all ≥ {:.0}% reliable), Shannon {:.1} bit/s/Hz (worst link {:.1})",
        schedule.utility(&problem),
        100.0 * (1.0 - problem.epsilon()),
        total,
        worst
    );
}
