//! Multi-slot scheduling on heterogeneous workloads (the paper's
//! stated future work): drain clustered, linear, and uniform topologies
//! and compare how many slots each algorithm needs.
//!
//! Run with: `cargo run --release --example multislot_scheduling`

use fading_rls::prelude::*;

fn drain(label: &str, links: LinkSet) {
    let problem = Problem::paper(links, 3.0);
    println!(
        "{label}: {} links, g(L) = {}",
        problem.len(),
        fading_rls::net::length_diversity(problem.links())
    );
    for s in [
        &Rle::new() as &dyn Scheduler,
        &Ldp::new(),
        &GreedyRate,
        &Dls::new(),
    ] {
        let plan = schedule_all(&problem, s);
        // Every slot must be individually feasible.
        let all_feasible = plan.slots().iter().all(|sl| is_feasible(&problem, sl));
        println!(
            "  {:<12} {:>4} slots ({:>5.1} links/slot, feasible: {})",
            s.name(),
            plan.num_slots(),
            problem.len() as f64 / plan.num_slots() as f64,
            all_feasible
        );
    }
    println!();
}

fn main() {
    drain("uniform field", UniformGenerator::paper(200).generate(1));
    drain(
        "clustered hotspots",
        ClusteredGenerator {
            side: 500.0,
            clusters: 5,
            links_per_cluster: 40,
            cluster_radius: 40.0,
            len_lo: 5.0,
            len_hi: 20.0,
            rates: RateModel::Fixed(1.0),
        }
        .generate(2),
    );
    drain(
        "highway chain",
        LinearGenerator {
            n: 120,
            spacing: 30.0,
            link_length: 8.0,
            rates: RateModel::Fixed(1.0),
        }
        .generate(3),
    );
}
