//! Empirical approximation-ratio checks against Theorems 4.2 and 4.4.
//!
//! On small dense instances where the exact optimum is computable, the
//! measured ratio `OPT/ALG` must respect the proven bounds — `16 g(L)`
//! for LDP (Theorem 4.2) and the paper's constant for RLE
//! (Theorem 4.4) — and in practice sit far below them.

use fading_rls::core::algo::exact::branch_and_bound;
use fading_rls::prelude::*;

fn dense_problem(n: usize, seed: u64) -> Problem {
    let gen = UniformGenerator {
        side: 150.0,
        n,
        len_lo: 5.0,
        len_hi: 20.0,
        rates: RateModel::Fixed(1.0),
    };
    Problem::paper(gen.generate(seed), 3.0)
}

#[test]
fn ldp_respects_the_16_g_l_bound() {
    for seed in 0..10u64 {
        let p = dense_problem(14, seed);
        let g = fading_rls::net::length_diversity(p.links());
        let opt = branch_and_bound(&p).utility(&p);
        let ldp = Ldp::new().schedule(&p).utility(&p);
        assert!(ldp > 0.0, "seed {seed}: LDP empty");
        let ratio = opt / ldp;
        let bound = 16.0 * g as f64;
        assert!(
            ratio <= bound + 1e-9,
            "seed {seed}: ratio {ratio} exceeds 16·g(L) = {bound}"
        );
    }
}

#[test]
fn rle_ratio_is_bounded_by_a_small_constant_in_practice() {
    // Theorem 4.4's constant is enormous for the paper parameters; what
    // matters empirically is that RLE stays within a small factor of
    // optimal on uniform-rate instances.
    let mut worst: f64 = 0.0;
    for seed in 0..10u64 {
        let p = dense_problem(14, seed);
        let opt = branch_and_bound(&p).utility(&p);
        let rle = Rle::new().schedule(&p).utility(&p);
        assert!(rle > 0.0, "seed {seed}: RLE empty");
        worst = worst.max(opt / rle);
    }
    assert!(
        worst <= 16.0,
        "RLE empirical worst ratio {worst} is implausibly large"
    );
}

#[test]
fn greedy_and_dls_are_competitive_too() {
    for seed in 0..6u64 {
        let p = dense_problem(13, seed);
        let opt = branch_and_bound(&p).utility(&p);
        for s in [&GreedyRate as &dyn Scheduler, &Dls::new()] {
            let got = s.schedule(&p).utility(&p);
            assert!(got > 0.0, "{} empty on seed {seed}", s.name());
            assert!(
                opt / got <= 16.0,
                "{} ratio {} too large on seed {seed}",
                s.name(),
                opt / got
            );
        }
    }
}

#[test]
fn nobody_beats_the_optimum() {
    for seed in 0..6u64 {
        let p = dense_problem(12, seed);
        let opt = branch_and_bound(&p).utility(&p);
        for s in [
            &Ldp::new() as &dyn Scheduler,
            &Rle::new(),
            &GreedyRate,
            &Dls::new(),
            &RandomFeasible::new(seed),
            &ApproxLogN, // different model, but utility is still ≤ OPT only if feasible…
        ] {
            let schedule = s.schedule(&p);
            // Only compare schedules that are feasible in the fading
            // model — the baselines may exceed OPT by breaking it,
            // which is allowed (and expected).
            if is_feasible(&p, &schedule) {
                assert!(
                    schedule.utility(&p) <= opt + 1e-9,
                    "{} beat the optimum on seed {seed}",
                    s.name()
                );
            }
        }
    }
}

#[test]
fn single_magnitude_instances_keep_ldp_near_optimal() {
    // With g(L) = 1 the LDP bound is 16; on a lattice it does much
    // better because each occupied square contributes.
    let field = GridGenerator {
        rows: 4,
        cols: 4,
        spacing: 45.0,
        link_length: 9.0,
        rates: RateModel::Fixed(1.0),
    };
    let p = Problem::paper(field.generate(0), 3.0);
    let opt = branch_and_bound(&p).utility(&p);
    let ldp = Ldp::new().schedule(&p).utility(&p);
    assert!(ldp > 0.0);
    assert!(opt / ldp <= 16.0);
}
