//! Property-based invariants across the whole stack.
//!
//! These encode the physics and algebra the implementation must
//! respect regardless of instance: scale invariance of the
//! interference factors, feasibility of every fading-aware scheduler's
//! output, monotonicity of the budget, and id bookkeeping under
//! restriction.

use fading_rls::prelude::*;
use proptest::prelude::*;

/// Strategy: a random Fading-R-LS instance with `n ∈ [2, 25]` links.
fn instance_strategy() -> impl Strategy<Value = (LinkSet, f64)> {
    (2usize..25, 0u64..5000, 100.0f64..500.0, 2.2f64..5.0).prop_map(|(n, seed, side, alpha)| {
        let gen = UniformGenerator {
            side,
            n,
            len_lo: 5.0,
            len_hi: 20.0,
            rates: RateModel::Fixed(1.0),
        };
        (gen.generate(seed), alpha)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fading_aware_schedulers_always_feasible((links, alpha) in instance_strategy()) {
        let p = Problem::paper(links, alpha);
        for s in [
            &Ldp::new() as &dyn Scheduler,
            &Ldp::two_sided(),
            &Rle::new(),
            &Dls::new(),
            &GreedyRate,
            &RandomFeasible::new(1),
        ] {
            let schedule = s.schedule(&p);
            prop_assert!(
                is_feasible(&p, &schedule),
                "{} produced an infeasible schedule", s.name()
            );
            prop_assert!(!schedule.is_empty(), "{} returned empty", s.name());
            prop_assert!(schedule.utility(&p) <= p.links().total_rate() + 1e-9);
        }
    }

    #[test]
    fn interference_factors_are_scale_invariant(
        (links, alpha) in instance_strategy(),
        scale in 0.1f64..10.0,
    ) {
        // f_{i,j} depends only on the distance *ratio* d_jj/d_ij, so
        // uniformly scaling all coordinates must not change any factor.
        let p1 = Problem::paper(links.clone(), alpha);
        let scaled: Vec<Link> = links
            .links()
            .iter()
            .map(|l| {
                Link::new(
                    l.id,
                    fading_rls::geom::Point2::new(l.sender.x * scale, l.sender.y * scale),
                    fading_rls::geom::Point2::new(l.receiver.x * scale, l.receiver.y * scale),
                    l.rate,
                )
            })
            .collect();
        let region = fading_rls::geom::Rect::new(
            fading_rls::geom::Point2::new(
                links.region().min().x * scale - 1.0,
                links.region().min().y * scale - 1.0,
            ),
            fading_rls::geom::Point2::new(
                links.region().max().x * scale + 1.0,
                links.region().max().y * scale + 1.0,
            ),
        );
        let p2 = Problem::paper(LinkSet::new(region, scaled), alpha);
        for i in p1.links().ids() {
            for j in p1.links().ids() {
                let a = p1.factor(i, j);
                let b = p2.factor(i, j);
                prop_assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                    "factor({i},{j}) changed under scaling: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn feasibility_is_monotone_in_epsilon(
        (links, alpha) in instance_strategy(),
        eps_lo in 0.001f64..0.05,
        bump in 1.5f64..10.0,
    ) {
        // A schedule feasible at ε is feasible at any larger ε.
        let eps_hi = (eps_lo * bump).min(0.9);
        let strict = Problem::new(links.clone(), ChannelParams::with_alpha(alpha), eps_lo);
        let loose = Problem::new(links, ChannelParams::with_alpha(alpha), eps_hi);
        let schedule = GreedyRate.schedule(&strict);
        prop_assert!(is_feasible(&strict, &schedule));
        prop_assert!(is_feasible(&loose, &schedule));
    }

    #[test]
    fn removing_a_link_preserves_feasibility((links, alpha) in instance_strategy()) {
        // Feasibility is downward-closed: dropping any member keeps the
        // rest feasible (interference only shrinks).
        let p = Problem::paper(links, alpha);
        let schedule = GreedyRate.schedule(&p);
        prop_assume!(schedule.len() >= 2);
        for drop in schedule.iter() {
            let rest = Schedule::from_ids(schedule.iter().filter(|&i| i != drop));
            prop_assert!(is_feasible(&p, &rest), "dropping {drop} broke feasibility");
        }
    }

    #[test]
    fn restrict_preserves_geometry((links, _alpha) in instance_strategy()) {
        let keep: Vec<LinkId> = links.ids().step_by(2).collect();
        let (sub, mapping) = links.restrict(&keep);
        prop_assert_eq!(sub.len(), keep.len());
        for (new_idx, old_id) in mapping.iter().enumerate() {
            let old = links.link(*old_id);
            let new = sub.link(LinkId(new_idx as u32));
            prop_assert_eq!(old.sender, new.sender);
            prop_assert_eq!(old.receiver, new.receiver);
            prop_assert_eq!(old.rate, new.rate);
        }
    }

    #[test]
    fn success_probabilities_multiply_out((links, alpha) in instance_strategy()) {
        // For every link in the all-on schedule, the report's success
        // probability equals the product form of Theorem 3.1.
        let p = Problem::paper(links, alpha);
        let all = Schedule::from_ids(p.links().ids());
        let report = FeasibilityReport::evaluate(&p, &all);
        for e in report.entries() {
            let d_jj = p.links().length(e.id);
            let product: f64 = all
                .iter()
                .filter(|&i| i != e.id)
                .map(|i| {
                    let d_ij = p.links().sender_receiver_distance(i, e.id);
                    1.0 / (1.0 + p.params().gamma_th * (d_jj / d_ij).powf(p.params().alpha))
                })
                .product();
            prop_assert!(
                (e.success_probability - product).abs() <= 1e-9,
                "link {}: {} vs {}", e.id, e.success_probability, product
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn multislot_plans_cover_exactly_once((links, alpha) in instance_strategy()) {
        let p = Problem::paper(links, alpha);
        let plan = schedule_all(&p, &Rle::new());
        let mut seen = std::collections::HashSet::new();
        for slot in plan.slots() {
            prop_assert!(!slot.is_empty());
            prop_assert!(is_feasible(&p, slot));
            for id in slot.iter() {
                prop_assert!(seen.insert(id), "{id} appears in two slots");
            }
        }
        prop_assert_eq!(seen.len(), p.len());
        let bound = fading_rls::core::multislot::conflict_clique_lower_bound(&p);
        prop_assert!(plan.num_slots() >= bound);
    }

    #[test]
    fn local_search_only_improves((links, alpha) in instance_strategy()) {
        let p = Problem::paper(links, alpha);
        let base = Ldp::new().schedule(&p);
        let improved = fading_rls::core::algo::local_search::improve(&p, &base, 20);
        prop_assert!(improved.utility(&p) >= base.utility(&p) - 1e-12);
        prop_assert!(is_feasible(&p, &improved));
    }
}

proptest! {
    // The exact solver is slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bnb_is_never_beaten_by_any_feasible_schedule(
        n in 4usize..11,
        seed in 0u64..1000,
    ) {
        let gen = UniformGenerator {
            side: 120.0,
            n,
            len_lo: 5.0,
            len_hi: 20.0,
            rates: RateModel::Fixed(1.0),
        };
        let p = Problem::paper(gen.generate(seed), 3.0);
        let opt = fading_rls::core::algo::exact::branch_and_bound(&p).utility(&p);
        // Exhaustive cross-check on these tiny instances.
        let oracle = fading_rls::core::algo::exact::exhaustive(&p).utility(&p);
        prop_assert!((opt - oracle).abs() < 1e-9, "B&B {opt} vs oracle {oracle}");
    }
}
