//! The canonical instances under `instances/` must load, validate, and
//! schedule — they are the repository's "hello world" data and the
//! files README commands reference.

use fading_rls::net::io;
use fading_rls::prelude::*;
use std::path::Path;

fn load(name: &str) -> LinkSet {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("instances")
        .join(name);
    io::load(&path).unwrap_or_else(|e| panic!("cannot load {name}: {e}"))
}

#[test]
fn all_shipped_instances_load_and_validate() {
    for (name, n) in [
        ("paper_n100.json", 100),
        ("paper_n300.json", 300),
        ("dense_small.json", 50),
    ] {
        let links = load(name);
        assert_eq!(links.len(), n, "{name}");
        // io::load revalidates; reaching here means invariants hold.
        let stats = fading_rls::net::instance_stats(&links);
        assert!(stats.min_length >= 5.0 - 1e-9, "{name}");
    }
}

#[test]
fn shipped_instances_schedule_feasibly() {
    let links = load("paper_n300.json");
    let p = Problem::paper(links, 3.0);
    for s in [&Ldp::new() as &dyn Scheduler, &Rle::new(), &GreedyRate] {
        let schedule = s.schedule(&p);
        assert!(!schedule.is_empty(), "{}", s.name());
        assert!(is_feasible(&p, &schedule), "{}", s.name());
    }
}

#[test]
fn dense_small_is_exactly_solvable_adjacent_to_heuristics() {
    // 50 links is beyond exact reach, but its 20-link restriction is
    // not: check the heuristics stay within the proven LDP bound there.
    let links = load("dense_small.json");
    let keep: Vec<LinkId> = links.ids().take(14).collect();
    let (sub, _) = links.restrict(&keep);
    let p = Problem::paper(sub, 3.0);
    let opt = fading_rls::core::algo::exact::branch_and_bound(&p).utility(&p);
    let ldp = Ldp::new().schedule(&p).utility(&p);
    let g = fading_rls::net::length_diversity(p.links());
    assert!(opt / ldp <= 16.0 * g as f64 + 1e-9);
}

#[test]
fn shipped_instances_are_reproducible_from_their_seeds() {
    // instances/paper_n100.json was generated with the CLI defaults and
    // seed 2017. The RNG draw stream is bit-exact, so every sender
    // coordinate, id, and rate must match exactly; receiver coordinates
    // additionally go through libm `cos`/`sin`, which differ by ±1 ulp
    // across platforms, so they get an ulp-scale tolerance. (The fully
    // exact variant below is `#[ignore]`d with the reason.)
    let links = load("paper_n100.json");
    let regenerated = UniformGenerator::paper(100).generate(2017);
    assert_eq!(links.region(), regenerated.region());
    assert_eq!(links.len(), regenerated.len());
    for (a, b) in links.links().iter().zip(regenerated.links().iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.rate, b.rate);
        assert_eq!(a.sender, b.sender, "{:?}", a.id);
        assert!(
            (a.receiver.x - b.receiver.x).abs() <= 1e-9
                && (a.receiver.y - b.receiver.y).abs() <= 1e-9,
            "{:?}: receiver {:?} vs {:?}",
            a.id,
            a.receiver,
            b.receiver
        );
    }
}

#[test]
#[ignore = "receiver coordinates depend on the platform libm: cos/sin \
            results differ by ±1 ulp between the environment that \
            generated the shipped file and other toolchains/hosts"]
fn shipped_instances_are_bitwise_reproducible() {
    let links = load("paper_n100.json");
    let regenerated = UniformGenerator::paper(100).generate(2017);
    assert_eq!(links, regenerated);
}
