//! Theorem 3.2 validation: the Knapsack → Fading-R-LS reduction is
//! exact. For randomized Knapsack instances we solve both sides with
//! exact solvers and check `OPT_FadingRLS = 2 Σ p + OPT_Knapsack`, plus
//! the structural facts the proof relies on.

use fading_rls::core::algo::exact::branch_and_bound;
use fading_rls::core::ilp;
use fading_rls::core::reduction::{knapsack_to_fading_rls, KnapsackInstance};
use fading_rls::math::seeded_rng;
use fading_rls::prelude::*;
use rand::Rng;

fn random_knapsack(n: usize, seed: u64) -> KnapsackInstance {
    let mut rng = seeded_rng(seed);
    let values: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10.0)).collect();
    // Distinct weights by construction: base + unique increments.
    let mut weights: Vec<f64> = (0..n)
        .map(|i| rng.gen_range(0.5..5.0) + i as f64 * 5.0)
        .collect();
    use rand::seq::SliceRandom;
    weights.shuffle(&mut rng);
    let total: f64 = weights.iter().sum();
    let capacity = rng.gen_range(0.3..0.8) * total;
    KnapsackInstance::new(values, weights, capacity)
}

#[test]
fn randomized_roundtrip_small_instances() {
    for seed in 0..10u64 {
        let kp = random_knapsack(8, seed);
        let expect = 2.0 * kp.total_value() + kp.brute_force_optimum();
        let red = knapsack_to_fading_rls(&kp, ChannelParams::paper_defaults(), 0.01);
        let opt = branch_and_bound(&red.problem);
        let got = opt.utility(&red.problem);
        assert!(
            (got - expect).abs() < 1e-6 * expect,
            "seed {seed}: fading OPT {got} vs 2Σp + knap {expect}"
        );
    }
}

#[test]
fn ilp_agrees_with_bnb_on_reduced_instances() {
    for seed in 0..4u64 {
        let kp = random_knapsack(7, 100 + seed);
        let red = knapsack_to_fading_rls(&kp, ChannelParams::paper_defaults(), 0.01);
        let via_bnb = branch_and_bound(&red.problem).utility(&red.problem);
        let via_ilp = ilp::solve_problem(&red.problem).utility(&red.problem);
        assert!(
            (via_bnb - via_ilp).abs() < 1e-9 * via_bnb.max(1.0),
            "seed {seed}: {via_bnb} vs {via_ilp}"
        );
    }
}

#[test]
fn optimum_schedule_decodes_to_a_feasible_knapsack_selection() {
    // The ⇐ direction constructively: drop the gate link from the
    // optimum and the remaining items must fit the capacity.
    for seed in 0..6u64 {
        let kp = random_knapsack(8, 200 + seed);
        let red = knapsack_to_fading_rls(&kp, ChannelParams::paper_defaults(), 0.01);
        let opt = branch_and_bound(&red.problem);
        assert!(opt.contains(red.gate), "seed {seed}: gate missing");
        let picked_weight: f64 = opt
            .iter()
            .filter(|&id| id != red.gate)
            .map(|id| kp.weights[id.index()])
            .sum();
        assert!(
            picked_weight <= kp.capacity * (1.0 + 1e-6),
            "seed {seed}: decoded selection overweight ({picked_weight} > {})",
            kp.capacity
        );
        let picked_value: f64 = opt
            .iter()
            .filter(|&id| id != red.gate)
            .map(|id| kp.values[id.index()])
            .sum();
        assert!(
            (picked_value - kp.brute_force_optimum()).abs() < 1e-6,
            "seed {seed}: decoded value {picked_value} vs knapsack OPT {}",
            kp.brute_force_optimum()
        );
    }
}

#[test]
fn forward_direction_any_feasible_selection_embeds() {
    // The ⇒ direction: every knapsack-feasible subset, plus the gate,
    // is a feasible Fading-R-LS schedule.
    let kp = random_knapsack(8, 999);
    let red = knapsack_to_fading_rls(&kp, ChannelParams::paper_defaults(), 0.01);
    let n = kp.len();
    for mask in 0u32..(1 << n) {
        let weight: f64 = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| kp.weights[i])
            .sum();
        if weight > kp.capacity {
            continue;
        }
        let ids = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| LinkId(i as u32))
            .chain([red.gate]);
        let schedule = fading_rls::core::Schedule::from_ids(ids);
        assert!(
            is_feasible(&red.problem, &schedule),
            "mask {mask:b} (weight {weight} ≤ {}) should embed feasibly",
            kp.capacity
        );
    }
}

#[test]
fn gate_rate_dominates_any_itemset() {
    let kp = random_knapsack(10, 555);
    let red = knapsack_to_fading_rls(&kp, ChannelParams::paper_defaults(), 0.01);
    assert_eq!(red.gate_rate, 2.0 * kp.total_value());
    assert!(red.gate_rate > kp.total_value());
}
