//! Golden regression tests: exact outputs for fixed seeds.
//!
//! Every algorithm and generator in the workspace is deterministic
//! given a seed, so accidental behavioral changes (a reordered
//! tie-break, a constant tweak, an RNG stream shift) show up here as
//! exact mismatches. If a change is *intentional*, update the goldens
//! and say why in the commit.

#![allow(clippy::excessive_precision)] // goldens are printed at full precision

use fading_rls::prelude::*;

fn paper_problem() -> Problem {
    Problem::paper(UniformGenerator::paper(200).generate(123), 3.0)
}

#[test]
fn golden_instance_geometry() {
    let links = UniformGenerator::paper(200).generate(123);
    assert_eq!(links.len(), 200);
    // Spot-check exact coordinates of the first link for RNG stream
    // stability (StdRng is documented as a stable algorithm per rand
    // 0.8.x; this pins our usage of it).
    let l0 = links.link(LinkId(0));
    assert!(
        (l0.sender.x - 86.62732213077828192).abs() < 1e-9,
        "{}",
        l0.sender.x
    );
    assert!(
        (l0.sender.y - 76.14821530110893377).abs() < 1e-9,
        "{}",
        l0.sender.y
    );
    assert!((links.min_length().unwrap() - 5.17247734438783002).abs() < 1e-9);
}

#[test]
fn golden_schedule_sizes() {
    let p = paper_problem();
    let cases: [(&dyn Scheduler, usize); 6] = [
        (&Ldp::new(), 4),
        (&Ldp::two_sided(), 4),
        (&Rle::new(), 10),
        (&Dls::new(), 10),
        (&ApproxLogN, 21),
        (&ApproxDiversity::new(), 62),
    ];
    for (s, expect) in cases {
        let got = s.schedule(&p).len();
        assert_eq!(got, expect, "{} scheduled {got}, golden {expect}", s.name());
    }
}

#[test]
fn golden_rle_schedule_members() {
    let p = paper_problem();
    let s = Rle::new().schedule(&p);
    let ids: Vec<u32> = s.iter().map(|id| id.0).collect();
    assert_eq!(ids, vec![42, 58, 70, 81, 93, 96, 154, 155, 168, 181]);
}

#[test]
fn golden_constants() {
    let p = paper_problem();
    let beta = fading_rls::core::constants::ldp_beta(p.params(), p.gamma_eps());
    assert!((beta - 12.94004988631556330).abs() < 1e-9, "{beta}");
    let c1 = fading_rls::core::constants::rle_c1(p.params(), p.gamma_eps(), 0.5);
    assert!((c1 - 23.31386074562002975).abs() < 1e-9, "{c1}");
    let mu = fading_rls::core::constants::approx_logn_mu(p.params());
    assert!((mu - 2.36091033866696920).abs() < 1e-9, "{mu}");
}

#[test]
fn golden_monte_carlo_statistics() {
    let p = paper_problem();
    let s = ApproxDiversity::new().schedule(&p);
    let stats = simulate_many(&p, &s, 500, 99);
    // Bit-reproducible across thread counts by construction.
    assert_eq!(stats.scheduled, 62);
    assert!(
        (stats.failed.mean - 1.73).abs() < 1e-9,
        "{}",
        stats.failed.mean
    );
    assert!(
        (stats.throughput.mean - 60.27).abs() < 1e-9,
        "{}",
        stats.throughput.mean
    );
}

#[test]
fn golden_diversity_and_stats() {
    let links = UniformGenerator::paper(200).generate(123);
    assert_eq!(fading_rls::net::length_diversity(&links), 2);
    let st = fading_rls::net::instance_stats(&links);
    assert_eq!(st.diversity, 2);
    assert!(
        (st.mean_length - 12.52917648974644393).abs() < 1e-9,
        "{}",
        st.mean_length
    );
}
