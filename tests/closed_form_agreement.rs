//! Theorem 3.1 validation: the closed-form success probability
//! `Pr(X_j ≥ γ_th) = Π_i 1/(1 + γ_th (d_jj/d_ij)^α)` must match the
//! Monte-Carlo frequency of the simulated Rayleigh channel, link by
//! link and in aggregate — across path-loss exponents and schedule
//! densities.

use fading_rls::prelude::*;

/// Simulates `trials` slots and returns per-link empirical success
/// frequencies, index-aligned with `schedule.ids()`.
fn empirical_success(
    problem: &Problem,
    schedule: &fading_rls::core::Schedule,
    trials: u64,
    seed: u64,
) -> Vec<f64> {
    let mut counts = vec![0u64; schedule.len()];
    for t in 0..trials {
        let mut rng = fading_rls::math::seeded_rng(fading_rls::math::split_seed(seed, t));
        let out = simulate_slot(problem, schedule, &mut rng);
        for (k, id) in schedule.iter().enumerate() {
            if out.successes.contains(&id) {
                counts[k] += 1;
            }
        }
    }
    counts.iter().map(|&c| c as f64 / trials as f64).collect()
}

#[test]
fn per_link_success_matches_theorem_3_1() {
    let links = UniformGenerator::paper(150).generate(21);
    let problem = Problem::paper(links, 3.0);
    // A dense schedule so probabilities are strictly inside (0,1).
    let schedule = ApproxDiversity::new().schedule(&problem);
    let trials = 20_000;
    let empirical = empirical_success(&problem, &schedule, trials, 5);
    let report = FeasibilityReport::evaluate(&problem, &schedule);
    for (emp, entry) in empirical.iter().zip(report.entries()) {
        let analytic = entry.success_probability;
        // Binomial standard error at 20k trials.
        let se = (analytic * (1.0 - analytic) / trials as f64).sqrt();
        assert!(
            (emp - analytic).abs() <= 5.0 * se + 0.005,
            "link {}: empirical {emp} vs closed form {analytic}",
            entry.id
        );
    }
}

#[test]
fn aggregate_failures_match_across_alpha() {
    for &alpha in &[2.5, 3.5, 4.5] {
        let links = UniformGenerator::paper(200).generate(31);
        let problem = Problem::paper(links, alpha);
        let schedule = ApproxLogN.schedule(&problem);
        let report = FeasibilityReport::evaluate(&problem, &schedule);
        let analytic: f64 = report
            .entries()
            .iter()
            .map(|e| 1.0 - e.success_probability)
            .sum();
        let stats = simulate_many(&problem, &schedule, 8000, 7);
        assert!(
            (stats.failed.mean - analytic).abs() <= 4.0 * stats.failed.ci95 + 0.05,
            "α={alpha}: empirical {} vs analytic {analytic}",
            stats.failed.mean
        );
    }
}

#[test]
fn feasible_links_rarely_fail_infeasible_links_often_do() {
    let links = UniformGenerator::paper(300).generate(41);
    let problem = Problem::paper(links, 3.0);
    let schedule = ApproxDiversity::new().schedule(&problem);
    let report = FeasibilityReport::evaluate(&problem, &schedule);
    let empirical = empirical_success(&problem, &schedule, 5000, 17);
    for (emp, entry) in empirical.iter().zip(report.entries()) {
        if entry.feasible {
            assert!(
                *emp >= 1.0 - problem.epsilon() - 0.01,
                "feasible link {} failed too often ({emp})",
                entry.id
            );
        }
    }
    // And at least one infeasible link visibly under-performs (the
    // instance is dense enough that some link misses the target badly).
    let worst = empirical
        .iter()
        .zip(report.entries())
        .filter(|(_, e)| !e.feasible)
        .map(|(emp, _)| *emp)
        .fold(f64::INFINITY, f64::min);
    assert!(
        worst < 1.0 - problem.epsilon(),
        "expected an under-target link, min success {worst}"
    );
}
