//! Shape tests for the paper's figures, on reduced grids: who wins,
//! which direction the curves move. These are the assertions behind
//! EXPERIMENTS.md, kept fast enough for CI.

use fading_rls::core::Scheduler;
use fading_rls::prelude::*;
use fading_rls::sim::{sweep_alpha, sweep_n, ExperimentConfig};

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        n_values: vec![100, 300, 500],
        alpha_values: vec![2.5, 3.5, 4.5],
        default_n: 300,
        default_alpha: 3.0,
        instances: 3,
        trials: 300,
        ..ExperimentConfig::paper()
    }
}

#[test]
fn fig5a_shape_failures_vs_n() {
    let schedulers: [&dyn Scheduler; 4] = [
        &Ldp::new(),
        &Rle::new(),
        &ApproxLogN,
        &ApproxDiversity::new(),
    ];
    let t = sweep_n(&cfg(), &schedulers);
    // LDP and RLE: essentially zero failures at every N.
    for name in ["LDP", "RLE"] {
        for row in t.series(name) {
            assert!(
                row.failed_mean <= 0.05,
                "{name} at N={} fails {} per slot",
                row.x,
                row.failed_mean
            );
        }
    }
    // Baselines: strictly more failures than the resistant algorithms
    // at every N, and more failures at N=500 than at N=100.
    for name in ["ApproxLogN", "ApproxDiversity"] {
        let series = t.series(name);
        for row in &series {
            assert!(
                row.failed_mean > 0.05,
                "{name} at N={} unexpectedly clean",
                row.x
            );
        }
        assert!(
            series.last().unwrap().failed_mean > series.first().unwrap().failed_mean,
            "{name}: failures should grow with N"
        );
    }
}

#[test]
fn fig5b_shape_failures_vs_alpha() {
    let schedulers: [&dyn Scheduler; 2] = [&ApproxLogN, &ApproxDiversity::new()];
    let t = sweep_alpha(&cfg(), &schedulers);
    // Per-link failure rate decreases as α grows (the paper's Fig. 5(b)
    // observation via Eq. (17); the absolute count is confounded by the
    // α-dependent schedule size — see EXPERIMENTS.md).
    for name in ["ApproxLogN", "ApproxDiversity"] {
        let series = t.series(name);
        assert!(
            series.first().unwrap().per_link_failure_rate()
                > series.last().unwrap().per_link_failure_rate(),
            "{name}: per-link failure rate should shrink with α ({} vs {})",
            series.first().unwrap().per_link_failure_rate(),
            series.last().unwrap().per_link_failure_rate()
        );
    }
}

#[test]
fn fig6a_shape_throughput_vs_n() {
    let schedulers: [&dyn Scheduler; 2] = [&Ldp::new(), &Rle::new()];
    let t = sweep_n(&cfg(), &schedulers);
    let rle = t.series("RLE");
    let ldp = t.series("LDP");
    // RLE > LDP at every N (the paper's Fig. 6 ordering).
    for (r, l) in rle.iter().zip(&ldp) {
        assert!(
            r.throughput_mean > l.throughput_mean,
            "at N={}: RLE {} vs LDP {}",
            r.x,
            r.throughput_mean,
            l.throughput_mean
        );
    }
    // Throughput does not shrink with N for either algorithm.
    for series in [&rle, &ldp] {
        assert!(
            series.last().unwrap().throughput_mean >= series.first().unwrap().throughput_mean - 0.5,
            "throughput should not collapse with N"
        );
    }
}

#[test]
fn fig6b_shape_throughput_vs_alpha() {
    let schedulers: [&dyn Scheduler; 2] = [&Ldp::new(), &Rle::new()];
    let t = sweep_alpha(&cfg(), &schedulers);
    for name in ["LDP", "RLE"] {
        let series = t.series(name);
        assert!(
            series.last().unwrap().throughput_mean > series.first().unwrap().throughput_mean,
            "{name}: throughput should grow with α"
        );
    }
    // RLE above LDP across the α grid too.
    for (r, l) in t.series("RLE").iter().zip(t.series("LDP")) {
        assert!(r.throughput_mean > l.throughput_mean, "at α={}", r.x);
    }
}

#[test]
fn ablation_nested_classes_never_lose() {
    let schedulers: [&dyn Scheduler; 2] = [&Ldp::new(), &Ldp::two_sided()];
    let t = sweep_n(&cfg(), &schedulers);
    for (nested, two_sided) in t.series("LDP").iter().zip(t.series("LDP(two-sided)")) {
        assert!(
            nested.throughput_mean >= two_sided.throughput_mean - 1e-9,
            "nested classes lost at N={}",
            nested.x
        );
    }
}
