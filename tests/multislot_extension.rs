//! Multi-slot extension tests across topology families: every link is
//! scheduled exactly once, every slot is feasible, and parallelism
//! beats one-link-per-slot.

use fading_rls::prelude::*;
use std::collections::HashSet;

fn check_cover(problem: &Problem, plan: &MultiSlotSchedule) {
    let mut seen = HashSet::new();
    for slot in plan.slots() {
        assert!(!slot.is_empty());
        assert!(is_feasible(problem, slot));
        for id in slot.iter() {
            assert!(seen.insert(id), "{id} scheduled twice");
        }
    }
    assert_eq!(seen.len(), problem.len());
}

#[test]
fn uniform_field_cover() {
    let p = Problem::paper(UniformGenerator::paper(150).generate(1), 3.0);
    for s in [&Rle::new() as &dyn Scheduler, &Ldp::new(), &GreedyRate] {
        check_cover(&p, &schedule_all(&p, s));
    }
}

#[test]
fn clustered_field_cover() {
    let gen = ClusteredGenerator {
        side: 400.0,
        clusters: 4,
        links_per_cluster: 30,
        cluster_radius: 35.0,
        len_lo: 5.0,
        len_hi: 20.0,
        rates: RateModel::Fixed(1.0),
    };
    let p = Problem::paper(gen.generate(2), 3.0);
    check_cover(&p, &schedule_all(&p, &Rle::new()));
}

#[test]
fn chain_cover_with_high_parallelism() {
    let gen = LinearGenerator {
        n: 80,
        spacing: 40.0,
        link_length: 8.0,
        rates: RateModel::Fixed(1.0),
    };
    let p = Problem::paper(gen.generate(3), 3.0);
    let plan = schedule_all(&p, &Rle::new());
    check_cover(&p, &plan);
    // Links 5 hops apart barely interfere; far fewer slots than links.
    assert!(plan.num_slots() * 4 <= p.len());
}

#[test]
fn higher_alpha_needs_no_more_slots() {
    // Stronger attenuation can only help concurrency.
    let links = UniformGenerator::paper(120).generate(4);
    let lo = Problem::paper(links.clone(), 2.5);
    let hi = Problem::paper(links, 4.5);
    let slots_lo = schedule_all(&lo, &Rle::new()).num_slots();
    let slots_hi = schedule_all(&hi, &Rle::new()).num_slots();
    assert!(
        slots_hi <= slots_lo,
        "α=4.5 used {slots_hi} slots, α=2.5 used {slots_lo}"
    );
}

#[test]
fn per_slot_reliability_carries_over() {
    // Simulating each slot of the plan independently keeps failures
    // within ε per link.
    let p = Problem::paper(UniformGenerator::paper(100).generate(5), 3.0);
    let plan = schedule_all(&p, &Rle::new());
    let mut total_failed = 0.0;
    for (i, slot) in plan.slots().iter().enumerate() {
        total_failed += simulate_many(&p, slot, 500, i as u64).failed.mean;
    }
    let bound = p.epsilon() * p.len() as f64;
    assert!(
        total_failed <= bound + 1.0,
        "total expected failures {total_failed} vs bound {bound}"
    );
}
