//! Torture tests: extreme geometries and parameters through the public
//! API. None of these appear in the paper's evaluation, but a released
//! library must survive them.

use fading_rls::prelude::*;

fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Ldp::new()),
        Box::new(Rle::new()),
        Box::new(Dls::new()),
        Box::new(GreedyRate),
        Box::new(ApproxLogN),
        Box::new(ApproxDiversity::new()),
    ]
}

#[test]
fn single_link_instance() {
    let links = LinkSet::new(
        fading_rls::geom::Rect::square(100.0),
        vec![Link::new(
            LinkId(0),
            fading_rls::geom::Point2::new(10.0, 10.0),
            fading_rls::geom::Point2::new(15.0, 10.0),
            1.0,
        )],
    );
    let p = Problem::paper(links, 3.0);
    for s in all_schedulers() {
        let schedule = s.schedule(&p);
        assert_eq!(
            schedule.len(),
            1,
            "{} must schedule the lone link",
            s.name()
        );
        assert!(is_feasible(&p, &schedule));
    }
}

#[test]
fn two_links_far_apart_both_always_scheduled_by_greedy() {
    let mk = |x: f64| {
        (
            fading_rls::geom::Point2::new(x, 0.0),
            fading_rls::geom::Point2::new(x + 5.0, 0.0),
        )
    };
    let (s0, r0) = mk(0.0);
    let (s1, r1) = mk(100_000.0);
    let links = LinkSet::new(
        fading_rls::geom::Rect::square(200_000.0),
        vec![
            Link::new(LinkId(0), s0, r0, 1.0),
            Link::new(LinkId(1), s1, r1, 1.0),
        ],
    );
    let p = Problem::paper(links, 3.0);
    let schedule = GreedyRate.schedule(&p);
    assert_eq!(schedule.len(), 2);
}

#[test]
fn collinear_chain_is_handled() {
    let gen = LinearGenerator {
        n: 40,
        spacing: 25.0,
        link_length: 6.0,
        rates: RateModel::Fixed(1.0),
    };
    let p = Problem::paper(gen.generate(0), 3.0);
    for s in all_schedulers() {
        let schedule = s.schedule(&p);
        assert!(!schedule.is_empty(), "{}", s.name());
    }
}

#[test]
fn microscopic_and_gigantic_coordinates() {
    // Interference factors are scale-invariant; algorithms must not
    // depend on absolute coordinate magnitude.
    for scale in [1e-3, 1e6] {
        let links: Vec<Link> = (0..20)
            .map(|i| {
                let base = fading_rls::geom::Point2::new(
                    (i % 5) as f64 * 100.0 * scale,
                    (i / 5) as f64 * 100.0 * scale,
                );
                Link::new(
                    LinkId(i),
                    base,
                    base + fading_rls::geom::Point2::new(10.0 * scale, 0.0),
                    1.0,
                )
            })
            .collect();
        let ls = LinkSet::new(fading_rls::geom::Rect::square(500.0 * scale), links);
        let p = Problem::paper(ls, 3.0);
        let rle = Rle::new().schedule(&p);
        assert!(!rle.is_empty(), "scale {scale}");
        assert!(is_feasible(&p, &rle), "scale {scale}");
    }
}

#[test]
fn alpha_barely_above_two() {
    // ζ(α−1) explodes as α→2⁺; constants must stay finite and the
    // algorithms functional (they just become very conservative).
    let links = UniformGenerator::paper(100).generate(7);
    let p = Problem::new(links, ChannelParams::new(2.05, 1.0, 1.0, 0.0), 0.01);
    for s in [&Ldp::new() as &dyn Scheduler, &Rle::new()] {
        let schedule = s.schedule(&p);
        assert!(!schedule.is_empty(), "{}", s.name());
        assert!(is_feasible(&p, &schedule), "{}", s.name());
    }
}

#[test]
fn very_strict_and_very_loose_epsilon() {
    let links = UniformGenerator::paper(150).generate(8);
    // Strict: one failure in a million.
    let strict = Problem::new(links.clone(), ChannelParams::paper_defaults(), 1e-6);
    let s_strict = Rle::new().schedule(&strict);
    assert!(is_feasible(&strict, &s_strict));
    // Loose: 30% failures tolerated.
    let loose = Problem::new(links, ChannelParams::paper_defaults(), 0.3);
    let s_loose = Rle::new().schedule(&loose);
    assert!(is_feasible(&loose, &s_loose));
    assert!(
        s_loose.len() >= s_strict.len(),
        "looser target must not schedule fewer links ({} vs {})",
        s_loose.len(),
        s_strict.len()
    );
}

#[test]
fn huge_rate_disparities() {
    let links: Vec<Link> = (0..12)
        .map(|i| {
            let base = fading_rls::geom::Point2::new((i as f64) * 40.0, 0.0);
            let rate = if i == 5 { 1e9 } else { 1e-6 };
            Link::new(
                LinkId(i),
                base,
                base + fading_rls::geom::Point2::new(8.0, 0.0),
                rate,
            )
        })
        .collect();
    let ls = LinkSet::new(fading_rls::geom::Rect::square(600.0), links);
    let p = Problem::paper(ls, 3.0);
    let s = GreedyRate.schedule(&p);
    assert!(s.contains(LinkId(5)), "the valuable link must be scheduled");
    assert!(is_feasible(&p, &s));
    // Exact solver handles the disparity too.
    let opt = fading_rls::core::algo::exact::branch_and_bound(&p);
    assert!(opt.contains(LinkId(5)));
}

#[test]
fn extreme_gamma_thresholds() {
    let links = UniformGenerator::paper(80).generate(9);
    // Very demanding decoding threshold.
    let hard = Problem::new(
        links.clone(),
        ChannelParams::new(3.0, 100.0, 1.0, 0.0),
        0.01,
    );
    let s_hard = Rle::new().schedule(&hard);
    assert!(is_feasible(&hard, &s_hard));
    // Very forgiving threshold.
    let easy = Problem::new(links, ChannelParams::new(3.0, 0.01, 1.0, 0.0), 0.01);
    let s_easy = Rle::new().schedule(&easy);
    assert!(is_feasible(&easy, &s_easy));
    assert!(s_easy.len() >= s_hard.len());
}

#[test]
fn dense_clump_schedules_exactly_one() {
    // 30 links crammed into a 30×30 patch with overlapping geometry:
    // mutual factors are enormous, any pair conflicts, so the fading-
    // aware algorithms must return singletons (and stay feasible).
    let gen = ClusteredGenerator {
        side: 1000.0,
        clusters: 1,
        links_per_cluster: 30,
        cluster_radius: 15.0,
        len_lo: 5.0,
        len_hi: 20.0,
        rates: RateModel::Fixed(1.0),
    };
    let p = Problem::paper(gen.generate(10), 3.0);
    let s = Rle::new().schedule(&p);
    assert_eq!(s.len(), 1, "clump must collapse to a single link");
    assert!(is_feasible(&p, &s));
}

#[test]
fn multislot_on_the_dense_clump_uses_one_slot_per_link() {
    let gen = ClusteredGenerator {
        side: 1000.0,
        clusters: 1,
        links_per_cluster: 15,
        cluster_radius: 10.0,
        len_lo: 5.0,
        len_hi: 20.0,
        rates: RateModel::Fixed(1.0),
    };
    let p = Problem::paper(gen.generate(11), 3.0);
    let plan = schedule_all(&p, &Rle::new());
    assert_eq!(plan.num_slots(), 15);
    let bound = fading_rls::core::multislot::conflict_clique_lower_bound(&p);
    assert_eq!(bound, 15, "clump is a full conflict clique");
}

#[test]
fn simulator_handles_degenerate_schedules() {
    let links = UniformGenerator::paper(30).generate(12);
    let p = Problem::paper(links, 3.0);
    // Empty schedule: zero everything.
    let stats = simulate_many(&p, &fading_rls::core::Schedule::empty(), 50, 1);
    assert_eq!(stats.failed.mean, 0.0);
    assert_eq!(stats.throughput.mean, 0.0);
    assert_eq!(stats.scheduled, 0);
}
