//! End-to-end pipeline tests: generate → schedule → verify → simulate,
//! exercising every scheduler through the public facade API.

use fading_rls::prelude::*;

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Ldp::new()),
        Box::new(Ldp::two_sided()),
        Box::new(Rle::new()),
        Box::new(Dls::new()),
        Box::new(GreedyRate),
        Box::new(RandomFeasible::new(3)),
        Box::new(ApproxLogN),
        Box::new(ApproxDiversity::new()),
    ]
}

#[test]
fn every_scheduler_produces_a_nonempty_schedule() {
    let links = UniformGenerator::paper(200).generate(11);
    let problem = Problem::paper(links, 3.0);
    for s in schedulers() {
        let schedule = s.schedule(&problem);
        assert!(!schedule.is_empty(), "{} returned empty", s.name());
        assert!(
            schedule.iter().all(|id| id.index() < problem.len()),
            "{} returned out-of-range ids",
            s.name()
        );
    }
}

#[test]
fn fading_resistant_schedulers_meet_the_reliability_contract() {
    // The paper's headline: LDP/RLE (and our fading-aware extras) keep
    // every link ≥ 1−ε reliable; empirical failures per slot stay below
    // ε·|S| with Monte-Carlo slack.
    for seed in [1u64, 2, 3] {
        let links = UniformGenerator::paper(250).generate(seed);
        let problem = Problem::paper(links, 3.0);
        for s in [
            &Ldp::new() as &dyn Scheduler,
            &Rle::new(),
            &Dls::new(),
            &GreedyRate,
        ] {
            let schedule = s.schedule(&problem);
            assert!(
                is_feasible(&problem, &schedule),
                "{} infeasible on seed {seed}",
                s.name()
            );
            let stats = simulate_many(&problem, &schedule, 2000, seed);
            let bound = problem.epsilon() * schedule.len() as f64;
            assert!(
                stats.failed.mean <= bound + 4.0 * stats.failed.ci95.max(0.01),
                "{} on seed {seed}: {} failures vs bound {}",
                s.name(),
                stats.failed.mean,
                bound
            );
        }
    }
}

#[test]
fn baselines_break_the_contract_that_ldp_and_rle_keep() {
    // Fig. 5 in one assertion: on the same instances, the deterministic
    // baselines accumulate strictly more expected failures than the
    // fading-resistant algorithms.
    let mut baseline_failures = 0.0;
    let mut resistant_failures = 0.0;
    for seed in 0..3u64 {
        let links = UniformGenerator::paper(300).generate(seed);
        let problem = Problem::paper(links, 3.0);
        for s in [&ApproxLogN as &dyn Scheduler, &ApproxDiversity::new()] {
            let schedule = s.schedule(&problem);
            baseline_failures += simulate_many(&problem, &schedule, 1000, seed).failed.mean;
        }
        for s in [&Ldp::new() as &dyn Scheduler, &Rle::new()] {
            let schedule = s.schedule(&problem);
            resistant_failures += simulate_many(&problem, &schedule, 1000, seed).failed.mean;
        }
    }
    assert!(
        baseline_failures > 10.0 * resistant_failures.max(0.01),
        "baselines {baseline_failures} vs resistant {resistant_failures}"
    );
}

#[test]
fn throughput_ordering_matches_figure_6() {
    // RLE > LDP in delivered throughput on the paper workload.
    let mut rle = 0.0;
    let mut ldp = 0.0;
    for seed in 0..5u64 {
        let links = UniformGenerator::paper(300).generate(seed);
        let problem = Problem::paper(links, 3.0);
        rle += simulate_many(&problem, &Rle::new().schedule(&problem), 500, seed)
            .throughput
            .mean;
        ldp += simulate_many(&problem, &Ldp::new().schedule(&problem), 500, seed)
            .throughput
            .mean;
    }
    assert!(rle > ldp, "RLE {rle} should out-deliver LDP {ldp}");
}

#[test]
fn instance_io_roundtrips_through_the_full_pipeline() {
    let links = UniformGenerator::paper(60).generate(5);
    let json = fading_rls::net::io::to_json(&links);
    let restored = fading_rls::net::io::from_json(&json).unwrap();
    assert_eq!(links, restored);
    // Schedules computed on original and restored instances agree.
    let p1 = Problem::paper(links, 3.0);
    let p2 = Problem::paper(restored, 3.0);
    assert_eq!(Rle::new().schedule(&p1), Rle::new().schedule(&p2));
}

#[test]
fn alpha_sweep_shapes_hold_end_to_end() {
    // Fig. 5(b)/6(b): baselines fail less and RLE delivers more as α
    // grows. Compare the sweep endpoints.
    let links = UniformGenerator::paper(300).generate(9);
    let lo = Problem::paper(links.clone(), 2.5);
    let hi = Problem::paper(links, 4.5);

    // Per-link failure rate (the Eq. (17) mechanism): larger α
    // attenuates remote interference faster. The absolute count is
    // confounded by the α-dependent schedule size.
    let fail_rate = |p: &Problem| {
        let s = ApproxDiversity::new().schedule(p);
        simulate_many(p, &s, 1000, 1).failed.mean / s.len() as f64
    };
    assert!(
        fail_rate(&lo) > fail_rate(&hi),
        "baseline per-link failure rate should drop with α: {} vs {}",
        fail_rate(&lo),
        fail_rate(&hi)
    );

    let tput = |p: &Problem| {
        let s = Rle::new().schedule(p);
        simulate_many(p, &s, 500, 2).throughput.mean
    };
    assert!(
        tput(&hi) > tput(&lo),
        "RLE throughput should rise with α: {} vs {}",
        tput(&lo),
        tput(&hi)
    );
}
