//! Derive macros for the vendored serde subset.
//!
//! No `syn`/`quote` are available offline, so the input item is parsed
//! directly from the `proc_macro` token stream and the impl is emitted
//! as a source string. Supported shapes (everything this workspace
//! derives on): named structs, tuple/newtype structs, unit structs, and
//! enums with unit, newtype, tuple, and struct variants. Generic types
//! and `#[serde(...)]` attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---- item model ------------------------------------------------------

enum Fields {
    Unit,
    /// Tuple struct/variant: number of unnamed fields.
    Tuple(usize),
    /// Named fields in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---- parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility ahead of `struct` / `enum`.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // #[...]
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // pub(crate) / pub(in ...)
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (offline vendored stub)");
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                // `struct Name;`
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                None => Fields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(split_top_commas(g.stream()).len())
                }
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            let variants = split_top_commas(body)
                .into_iter()
                .filter(|v| !v.is_empty())
                .map(parse_variant)
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Splits a token list at top-level commas. Commas inside groups are
/// never top-level; commas inside generic angle brackets are excluded
/// by tracking `<`/`>` depth (angle brackets are punctuation, not
/// groups).
fn split_top_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts field names from `{ attrs? vis? name: Type, ... }` content.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_commas(stream)
        .into_iter()
        .filter(|f| !f.is_empty())
        .map(|field| {
            let mut last_ident = None;
            for tt in &field {
                match tt {
                    TokenTree::Ident(id) => last_ident = Some(id.to_string()),
                    TokenTree::Punct(p) if p.as_char() == ':' => break,
                    _ => {}
                }
            }
            last_ident.expect("serde_derive: field without a name")
        })
        .collect()
}

fn parse_variant(tokens: Vec<TokenTree>) -> Variant {
    let mut i = 0;
    while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
        i += 2; // attribute: '#' + bracket group
    }
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected variant name, found {other}"),
    };
    let fields = match tokens.get(i + 1) {
        None => Fields::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(split_top_commas(g.stream()).len())
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
            panic!("serde_derive: explicit discriminants are not supported")
        }
        other => panic!("serde_derive: unexpected tokens after variant `{name}`: {other:?}"),
    };
    Variant { name, fields }
}

// ---- codegen: Serialize ----------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "serde::Node::Null".to_string(),
                // Newtype structs are transparent, larger tuples a seq
                // (matches serde's JSON representation).
                Fields::Tuple(1) => "serde::Serialize::serialize_node(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Serialize::serialize_node(&self.{k})"))
                        .collect();
                    format!("serde::Node::Seq(vec![{}])", elems.join(", "))
                }
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), serde::Serialize::serialize_node(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("serde::Node::Map(vec![{}])", entries.join(", "))
                }
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                 \x20   fn serialize_node(&self) -> serde::Node {{ {body} }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let arm = match &v.fields {
                    Fields::Unit => {
                        format!("{name}::{vn} => serde::Node::Str(\"{vn}\".to_string()),\n")
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{vn}(__f0) => serde::Node::Map(vec![(\"{vn}\".to_string(), \
                         serde::Serialize::serialize_node(__f0))]),\n"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::serialize_node({b})"))
                            .collect();
                        format!(
                            "{name}::{vn}({}) => serde::Node::Map(vec![(\"{vn}\".to_string(), \
                             serde::Node::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        )
                    }
                    Fields::Named(names) => {
                        let entries: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), serde::Serialize::serialize_node({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {} }} => serde::Node::Map(vec![(\"{vn}\".to_string(), \
                             serde::Node::Map(vec![{}]))]),\n",
                            names.join(", "),
                            entries.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                 \x20   fn serialize_node(&self) -> serde::Node {{\n\
                 \x20       match self {{\n{arms}\x20       }}\n\
                 \x20   }}\n\
                 }}\n"
            )
        }
    }
}

// ---- codegen: Deserialize --------------------------------------------

fn named_fields_ctor(type_path: &str, names: &[String], src: &str) -> String {
    let inits: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "{f}: serde::Deserialize::deserialize_node({src}.get(\"{f}\")\
                 .ok_or_else(|| serde::DeError(\"missing field `{f}`\".to_string()))?)?"
            )
        })
        .collect();
    format!("{type_path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("{{ let _ = node; Ok({name}) }}"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::deserialize_node(node)?))")
                }
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Deserialize::deserialize_node(&__items[{k}])?"))
                        .collect();
                    format!(
                        "match node {{\n\
                         \x20   serde::Node::Seq(__items) if __items.len() == {n} => \
                         Ok({name}({})),\n\
                         \x20   _ => Err(serde::DeError(\
                         \"invalid type: expected a sequence of {n} for tuple struct {name}\"\
                         .to_string())),\n\
                         }}",
                        elems.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let ctor = named_fields_ctor(name, names, "node");
                    format!(
                        "match node {{\n\
                         \x20   serde::Node::Map(_) => Ok({ctor}),\n\
                         \x20   _ => Err(serde::DeError(\
                         \"invalid type: expected a map for struct {name}\".to_string())),\n\
                         }}"
                    )
                }
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 \x20   fn deserialize_node(node: &serde::Node) -> Result<Self, serde::DeError> \
                 {{\n\x20       {body}\n\x20   }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            // Externally tagged: unit variants are plain strings, data
            // variants are single-entry maps keyed by the variant name.
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    Fields::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                             serde::Deserialize::deserialize_node(__value)?)),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| {
                                format!("serde::Deserialize::deserialize_node(&__items[{k}])?")
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match __value {{\n\
                             \x20   serde::Node::Seq(__items) if __items.len() == {n} => \
                             Ok({name}::{vn}({})),\n\
                             \x20   _ => Err(serde::DeError(\
                             \"invalid data for variant `{vn}`\".to_string())),\n\
                             }},\n",
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let ctor = named_fields_ctor(&format!("{name}::{vn}"), names, "__value");
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match __value {{\n\
                             \x20   serde::Node::Map(_) => Ok({ctor}),\n\
                             \x20   _ => Err(serde::DeError(\
                             \"invalid data for variant `{vn}`\".to_string())),\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 \x20   fn deserialize_node(node: &serde::Node) -> Result<Self, serde::DeError> {{\n\
                 \x20       match node {{\n\
                 \x20           serde::Node::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 \x20               __other => Err(serde::DeError(format!(\
                 \"unknown variant `{{__other}}` of enum {name}\"))),\n\
                 \x20           }},\n\
                 \x20           serde::Node::Map(__entries) if __entries.len() == 1 => {{\n\
                 \x20               let (__tag, __value) = &__entries[0];\n\
                 \x20               let _ = __value;\n\
                 \x20               match __tag.as_str() {{\n\
                 {data_arms}\
                 \x20                   __other => Err(serde::DeError(format!(\
                 \"unknown variant `{{__other}}` of enum {name}\"))),\n\
                 \x20               }}\n\
                 \x20           }}\n\
                 \x20           _ => Err(serde::DeError(\
                 \"invalid representation for enum {name}\".to_string())),\n\
                 \x20       }}\n\
                 \x20   }}\n\
                 }}\n"
            )
        }
    }
}
