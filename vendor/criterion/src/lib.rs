//! Offline vendored subset of the `criterion` API.
//!
//! Provides just enough surface for the workspace's `harness = false`
//! benches to compile and produce useful numbers: each benchmark runs a
//! short calibrated loop and reports the mean iteration time on
//! stdout. No statistical analysis, plotting, or result persistence.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement driver handed to bench closures.
pub struct Bencher {
    /// Mean time per iteration of the last `iter` call.
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `f`, first warming up, then measuring a calibrated batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: find an iteration count that takes
        // roughly 50ms, capped to keep pathological benches bounded.
        let probe_start = Instant::now();
        std::hint::black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(50);
        let iters = (target.as_nanos() / probe.as_nanos()).clamp(1, 10_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.elapsed_per_iter = start.elapsed() / iters as u32;
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_per_iter: Duration::ZERO,
    };
    f(&mut b);
    println!("{label:<40} {:>12.3?}/iter", b.elapsed_per_iter);
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored runner calibrates
    /// its own iteration counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
