//! Offline vendored subset of the `rayon` API.
//!
//! The build environment has no crates.io access, so the workspace
//! ships the small slice of rayon it uses, implemented with
//! `std::thread::scope` instead of a work-stealing pool:
//!
//! * `(a..b).into_par_iter()` over integer ranges, with `map`,
//!   `fold(..).reduce(..)`, `collect::<Vec<_>>()`, `for_each`, `sum`;
//! * `slice.par_chunks_mut(n)` with `enumerate().for_each(..)`;
//! * [`join`].
//!
//! Work is split into contiguous chunks, one per available core, and
//! results are stitched back in input order, so `collect` is
//! position-stable and `fold → reduce` merges partials in a
//! deterministic order (the workspace's accumulators merge exactly, so
//! results are bit-identical to sequential execution either way).

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, ParChunksMut, ParallelIterator,
        ParallelSliceMut,
    };
}

/// Number of worker threads used for parallel calls.
///
/// Honors `RAYON_NUM_THREADS` (like upstream rayon's default pool) so
/// determinism tests can compare single-threaded and multi-threaded
/// runs of the same build; unset, unparsable, or zero values fall back
/// to the machine's available parallelism.
fn threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join worker panicked");
        (ra, rb)
    })
}

/// Splits `len` items into at most `threads()` contiguous chunks.
fn chunk_bounds(len: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let workers = threads().min(len);
    let base = len / workers;
    let extra = len % workers;
    let mut bounds = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// Runs `f(chunk_range)` for every chunk on scoped threads and returns
/// the per-chunk outputs in input order.
fn run_chunks<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let bounds = chunk_bounds(len);
    if bounds.len() <= 1 {
        return bounds.into_iter().map(|(lo, hi)| f(lo, hi)).collect();
    }
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| s.spawn(move || f(lo, hi)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    })
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// A data-parallel iterator over an indexable source.
///
/// Unlike real rayon this is driven through a single primitive:
/// [`ParallelIterator::chunked_fold`], which every adapter and terminal
/// method is written against.
pub trait ParallelIterator: Sized + Send + Sync {
    type Item: Send;

    /// Number of items.
    fn par_len(&self) -> usize;

    /// Produces the item at `index`. Must be safe to call concurrently
    /// for distinct indices.
    fn item_at(&self, index: usize) -> Self::Item;

    /// Maps each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Parallel fold: every chunk starts from `identity()` and folds
    /// its items; the per-chunk accumulators are then combined with
    /// [`FoldReduce::reduce`].
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> FoldReduce<Self, ID, F>
    where
        T: Send,
        ID: Fn() -> T + Sync + Send,
        F: Fn(T, Self::Item) -> T + Sync + Send,
    {
        FoldReduce {
            base: self,
            identity,
            fold_op,
        }
    }

    /// Runs `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let len = self.par_len();
        let this = &self;
        run_chunks(len, |lo, hi| {
            for i in lo..hi {
                f(this.item_at(i));
            }
        });
    }

    /// Collects into a container (only `Vec<T>` is supported).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let len = self.par_len();
        let this = &self;
        run_chunks(len, |lo, hi| (lo..hi).map(|i| this.item_at(i)).sum::<S>())
            .into_iter()
            .sum()
    }

    /// Counts the items.
    fn count(self) -> usize {
        self.par_len()
    }

    /// Pairs every item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }
}

/// Marker trait mirroring rayon's indexed iterator hierarchy.
pub trait IndexedParallelIterator: ParallelIterator {}
impl<T: ParallelIterator> IndexedParallelIterator for T {}

/// Collection types buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let len = iter.par_len();
        let this = &iter;
        let chunks = run_chunks(len, |lo, hi| {
            (lo..hi).map(|i| this.item_at(i)).collect::<Vec<_>>()
        });
        let mut out = Vec::with_capacity(len);
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    start: T,
    len: usize,
}

macro_rules! range_iter_impl {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;
            fn into_par_iter(self) -> RangeIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeIter { start: self.start, len }
            }
        }

        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            fn par_len(&self) -> usize {
                self.len
            }
            fn item_at(&self, index: usize) -> $t {
                self.start + index as $t
            }
        }
    )*};
}

range_iter_impl!(u32, u64, usize, i32, i64);

/// Parallel iterator over an owned `Vec` (items must be cloned out, so
/// `T: Clone`; the workspace only uses this for cheap value types).
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send + Sync + Clone> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl<T: Send + Sync + Clone> ParallelIterator for VecIter<T> {
    type Item = T;
    fn par_len(&self) -> usize {
        self.items.len()
    }
    fn item_at(&self, index: usize) -> T {
        self.items[index].clone()
    }
}

/// The `map` adapter.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn item_at(&self, index: usize) -> R {
        (self.f)(self.base.item_at(index))
    }
}

/// The `enumerate` adapter.
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn item_at(&self, index: usize) -> (usize, I::Item) {
        (index, self.base.item_at(index))
    }
}

/// Pending `fold`, waiting for its `reduce`.
pub struct FoldReduce<I, ID, F> {
    base: I,
    identity: ID,
    fold_op: F,
}

impl<I, T, ID, F> FoldReduce<I, ID, F>
where
    I: ParallelIterator,
    T: Send,
    ID: Fn() -> T + Sync + Send,
    F: Fn(T, I::Item) -> T + Sync + Send,
{
    /// Combines the per-chunk accumulators in input order.
    pub fn reduce<RID, R>(self, reduce_identity: RID, reduce_op: R) -> T
    where
        RID: Fn() -> T + Sync + Send,
        R: Fn(T, T) -> T + Sync + Send,
    {
        let len = self.base.par_len();
        let base = &self.base;
        let identity = &self.identity;
        let fold_op = &self.fold_op;
        let partials = run_chunks(len, |lo, hi| {
            let mut acc = identity();
            for i in lo..hi {
                acc = fold_op(acc, base.item_at(i));
            }
            acc
        });
        partials.into_iter().fold(reduce_identity(), &reduce_op)
    }
}

/// Mutable chunk splitting for slices (subset of `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over mutable chunks of a slice.
///
/// Mutable borrows cannot go through the shared `item_at` primitive,
/// so this type provides its own `enumerate().for_each(..)` pipeline
/// (the only shape the workspace uses).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync + Send,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated mutable chunks.
pub struct ParChunksMutEnumerate<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync + Send,
    {
        let chunks: Vec<(usize, &mut [T])> = self
            .inner
            .slice
            .chunks_mut(self.inner.chunk_size)
            .enumerate()
            .collect();
        if threads() <= 1 || chunks.len() <= 1 {
            for pair in chunks {
                f(pair);
            }
            return;
        }
        // Distribute the chunks round-robin over the workers.
        let workers = threads().min(chunks.len());
        let mut per_worker: Vec<Vec<(usize, &mut [T])>> = Vec::new();
        for _ in 0..workers {
            per_worker.push(Vec::new());
        }
        for (k, pair) in chunks.into_iter().enumerate() {
            per_worker[k % workers].push(pair);
        }
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for batch in per_worker {
                let f = &f;
                handles.push(s.spawn(move || {
                    for pair in batch {
                        f(pair);
                    }
                }));
            }
            for h in handles {
                h.join().expect("rayon worker panicked");
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn fold_reduce_sums() {
        let total = (0u64..10_000)
            .into_par_iter()
            .fold(|| 0u64, |acc, x| acc + x)
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk() {
        let mut data = vec![0usize; 64];
        data.par_chunks_mut(8).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[63], 8);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = crate::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }
}
