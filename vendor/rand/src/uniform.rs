//! Range sampling, matching rand 0.8.5's `UniformInt` / `UniformFloat`
//! single-sample paths bit-for-bit.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Ranges accepted by [`crate::Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! uniform_float_impl {
    ($ty:ty, $next:ident, $bits_to_discard:expr, $exp_one:expr, $fraction_bits:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                debug_assert!(low < high, "UniformSampler::sample_single: low >= high");
                let mut scale = high - low;
                assert!(
                    scale.is_finite(),
                    "UniformSampler::sample_single: range overflow"
                );
                loop {
                    // A value in [1, 2): exponent 0, random fraction.
                    let fraction = rng.$next() >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits(fraction | $exp_one);
                    // Shift to [0, 1) before scaling to avoid overflow;
                    // the subtraction is exact (Sterbenz) and this is the
                    // exact rounding order rand 0.8.5 uses here.
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                    // Rounding landed on/above `high` (rare): shrink the
                    // scale one ulp and retry, as upstream does.
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                debug_assert!(
                    low <= high,
                    "UniformSampler::sample_single_inclusive: low > high"
                );
                // Stretch so the largest fraction maps onto `high`.
                let scale = (high - low) / (1.0 as $ty - <$ty>::EPSILON / 2.0);
                debug_assert!(
                    scale >= 0.0,
                    "UniformSampler::sample_single_inclusive: range overflow"
                );
                loop {
                    let fraction = rng.$next() >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits(fraction | $exp_one);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    // Upstream redraws on overshoot (p ≈ 2⁻⁶⁴).
                    if res <= high {
                        return res;
                    }
                }
            }
        }
    };
}

// f64: discard 12 bits, exponent bits for 1.0 are 0x3FF << 52.
uniform_float_impl!(f64, next_u64, 12, 0x3FFu64 << 52, 52);
// f32: discard 9 bits, exponent bits for 1.0f32 are 0x7F << 23.
uniform_float_impl!(f32, next_u32, 9, 0x7Fu32 << 23, 23);

#[inline(always)]
fn wmul_u32(a: u32, b: u32) -> (u32, u32) {
    let full = a as u64 * b as u64;
    ((full >> 32) as u32, full as u32)
}

#[inline(always)]
fn wmul_u64(a: u64, b: u64) -> (u64, u64) {
    let full = a as u128 * b as u128;
    ((full >> 64) as u64, full as u64)
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $wmul:ident, $next:ident) => {
        impl SampleUniform for $ty {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "UniformSampler::sample_single: low >= high");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(
                    low <= high,
                    "UniformSampler::sample_single_inclusive: low > high"
                );
                let range = (high as $unsigned)
                    .wrapping_sub(low as $unsigned)
                    .wrapping_add(1) as $u_large;
                // Range 0 means the whole domain: accept any draw.
                if range == 0 {
                    return rng.$next() as $ty;
                }
                // Widening-multiply rejection zone, as in rand 0.8.5.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $u_large = rng.$next() as $u_large;
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(u32, u32, u32, wmul_u32, next_u32);
uniform_int_impl!(i32, u32, u32, wmul_u32, next_u32);
uniform_int_impl!(u64, u64, u64, wmul_u64, next_u64);
uniform_int_impl!(i64, u64, u64, wmul_u64, next_u64);
uniform_int_impl!(usize, usize, u64, wmul_u64, next_u64);
uniform_int_impl!(isize, usize, u64, wmul_u64, next_u64);

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x: f64 = rng.gen_range(3.0..7.0);
            assert!((3.0..7.0).contains(&x));
            let y: usize = rng.gen_range(0..13);
            assert!(y < 13);
            let z: f64 = rng.gen_range(5.0..=20.0);
            assert!((5.0..=20.0).contains(&z));
            let w: u32 = rng.gen_range(0..=6);
            assert!(w <= 6);
        }
    }
}
