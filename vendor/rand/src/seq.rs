//! Slice utilities (subset of `rand::seq`).

use crate::Rng;

/// Random operations on slices (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    type Item;

    /// In-place Fisher–Yates shuffle, identical draw order to rand 0.8
    /// (reverse walk, inclusive index sampling).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
