//! Named RNGs (subset of `rand::rngs`).

use crate::chacha::ChaCha12Rng;
use crate::{RngCore, SeedableRng};

/// The standard RNG: ChaCha with 12 rounds, exactly as rand 0.8.
#[derive(Clone, Debug)]
pub struct StdRng(ChaCha12Rng);

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self(ChaCha12Rng::from_seed(seed))
    }
}
