//! The `Standard` distribution (subset of `rand::distributions`).

use crate::RngCore;

/// A distribution that can sample values of type `T`.
pub trait Distribution<T> {
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over a type's natural domain
/// (`[0, 1)` for floats, all values for integers and `bool`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_uint_from_u32 {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> $t {
                RngCore::next_u32(rng) as $t
            }
        }
    )*};
}
macro_rules! standard_uint_from_u64 {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> $t {
                RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

standard_uint_from_u32!(u8, u16, u32, i8, i16, i32);
standard_uint_from_u64!(u64, i64, usize, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        // rand 0.8: high word first.
        let hi = RngCore::next_u64(rng) as u128;
        let lo = RngCore::next_u64(rng) as u128;
        (hi << 64) | lo
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8: sign-bit test on a u32 draw.
        (RngCore::next_u32(rng) as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    /// Multiply-based conversion with 53 bits of precision, as in rand
    /// 0.8's `distributions::float`.
    #[inline]
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let value = RngCore::next_u64(rng) >> (64 - 53);
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = RngCore::next_u32(rng) >> (32 - 24);
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
