//! ChaCha12 block cipher core, matching `rand_chacha` 0.3 output.
//!
//! `StdRng` in rand 0.8 is `ChaCha12Rng`: a ChaCha stream with 12
//! rounds, a 64-bit block counter in state words 12–13 and a 64-bit
//! stream id in words 14–15, buffered four 64-byte blocks at a time
//! through `rand_core`'s `BlockRng`. This module reproduces that
//! construction exactly so seeded streams are bit-identical to the
//! crates.io implementation (the workspace's golden tests pin values
//! from it).

/// Number of `u32` results buffered per refill (four ChaCha blocks).
const BUF_WORDS: usize = 64;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The raw ChaCha12 keystream generator.
#[derive(Clone, Debug)]
struct ChaCha12Core {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// 64-bit stream id (state words 14..16).
    stream: u64,
}

impl ChaCha12Core {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            stream: 0,
        }
    }

    /// Writes one 64-byte block for the current counter into `out`.
    fn block(&self, counter: u64, out: &mut [u32]) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let mut working = state;
        for _ in 0..6 {
            // One double round = a column round + a diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            out[i] = working[i].wrapping_add(state[i]);
        }
    }

    /// Refills the 64-word result buffer (4 consecutive blocks).
    fn generate(&mut self, results: &mut [u32; BUF_WORDS]) {
        for b in 0..4 {
            let counter = self.counter.wrapping_add(b as u64);
            self.block(counter, &mut results[16 * b..16 * (b + 1)]);
        }
        self.counter = self.counter.wrapping_add(4);
    }
}

/// `ChaCha12Rng` ≡ rand 0.8's `StdRng`: the core above driven through
/// the exact `BlockRng` buffering logic of `rand_core` 0.6.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    core: ChaCha12Core,
    results: [u32; BUF_WORDS],
    index: usize,
}

impl ChaCha12Rng {
    pub fn from_seed(seed: [u8; 32]) -> Self {
        Self {
            core: ChaCha12Core::from_seed(seed),
            results: [0u32; BUF_WORDS],
            // Past the end: the first draw triggers a refill.
            index: BUF_WORDS,
        }
    }

    #[inline]
    fn generate_and_set(&mut self, index: usize) {
        self.core.generate(&mut self.results);
        self.index = index;
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let read_u64 = |results: &[u32; BUF_WORDS], index: usize| {
            (u64::from(results[index + 1]) << 32) | u64::from(results[index])
        };
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            read_u64(&self.results, index)
        } else if index >= BUF_WORDS {
            self.generate_and_set(2);
            read_u64(&self.results, 0)
        } else {
            // One word left: combine it with the first of the next buffer.
            let x = u64::from(self.results[BUF_WORDS - 1]);
            self.generate_and_set(1);
            x | (u64::from(self.results[0]) << 32)
        }
    }

    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Byte-for-byte equivalent of BlockRng::fill_bytes: consume
        // whole or partial u32 words little-endian.
        let mut i = 0;
        while i < dest.len() {
            if self.index >= BUF_WORDS {
                self.generate_and_set(0);
            }
            let avail = &self.results[self.index..];
            let mut consumed = 0usize;
            for word in avail {
                let bytes = word.to_le_bytes();
                let take = (dest.len() - i).min(4);
                dest[i..i + take].copy_from_slice(&bytes[..take]);
                i += take;
                if take < 4 {
                    // Partial word: rand_core still advances a full word.
                    consumed += 1;
                    break;
                }
                consumed += 1;
                if i == dest.len() {
                    break;
                }
            }
            self.index += consumed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha_blocks_are_deterministic_and_distinct() {
        let mut a = ChaCha12Rng::from_seed([7u8; 32]);
        let mut b = ChaCha12Rng::from_seed([7u8; 32]);
        let mut c = ChaCha12Rng::from_seed([8u8; 32]);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert_eq!(same, 0);
    }
}
