//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the slice of `rand` it actually uses. The implementation is
//! deliberately bit-compatible with rand 0.8.5 for everything the
//! golden regression tests exercise:
//!
//! * `StdRng` is ChaCha12 via `rand_core`'s `BlockRng` buffering
//!   ([`chacha`]), seeded through the PCG32-based `seed_from_u64`;
//! * `Rng::gen::<f64>()` is the 53-bit multiply-based `Standard`
//!   distribution;
//! * `Rng::gen_range` reproduces `UniformFloat::sample_single[_inclusive]`
//!   and `UniformInt`'s widening-multiply rejection sampling;
//! * `seq::SliceRandom::shuffle` is the same reverse Fisher–Yates.
//!
//! Anything the workspace does not call is simply absent.

mod chacha;
pub mod uniform;

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples via the `Standard` distribution.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a range, matching rand 0.8's
    /// `sample_single` / `sample_single_inclusive`.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: uniform::SampleUniform,
        R: uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // rand 0.8 Bernoulli: compare 64-bit draw against p·2⁶⁴.
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (1u64 << 32) as f64 * (1u64 << 32) as f64) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable RNGs (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// rand_core 0.6's default: fill the seed with a PCG32 stream
    /// started from `state`. Bit-identical to the crates.io version.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let x = pcg32(&mut state);
            chunk.copy_from_slice(&x[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}
