//! Offline vendored subset of the `proptest` API.
//!
//! Supports the shapes this workspace uses: the `proptest!` macro with
//! an optional `#![proptest_config(...)]` header, `pat in strategy`
//! bindings, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range and
//! tuple strategies, `prop_map`, `proptest::collection::vec`, and
//! simple `[chars]{lo,hi}` character-class string strategies.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test RNG (no persisted failure seeds) and there is
//! no shrinking — a failing case panics with the generated inputs'
//! case number instead of a minimized example.

use std::ops::Range;

/// Runner configuration (subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the vendored runner uses a
        // smaller default so unconfigured property tests stay fast on
        // the single-core CI machine. Tests that need a specific count
        // set it via `ProptestConfig::with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG (SplitMix64 keyed by the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG keyed by the test name so each property test gets
    /// a stable, independent stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Draws one value from a strategy (used by the `proptest!` expansion,
/// which only holds the strategy expression by reference).
pub fn sample<S: Strategy>(strategy: &S, rng: &mut TestRng) -> S::Value {
    strategy.generate(rng)
}

/// The `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start;
                let hi = self.end;
                assert!(lo < hi, "empty float strategy range");
                let v = lo + (rng.next_f64() as $t) * (hi - lo);
                if v < hi { v } else { lo }
            }
        }
    )*};
}

float_range_strategy!(f64, f32);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = self.end.wrapping_sub(self.start) as u64;
                assert!(span > 0, "empty integer strategy range");
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($t:ident . $n:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Character-class string strategy: a `&'static str` of the shape
/// `[chars]{lo,hi}` is interpreted as "`lo..=hi` characters drawn from
/// the class" (ranges like `a-z` supported, a trailing `-` is literal).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, lo, hi) = parse_char_class(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }
}

fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
    let open = pattern.find('[');
    let close = pattern.find(']');
    let (Some(open), Some(close)) = (open, close) else {
        // Not a class pattern: treat the whole string as a literal.
        return (
            pattern.chars().collect::<Vec<_>>(),
            pattern.chars().count(),
            pattern.chars().count(),
        );
    };
    let class_src: Vec<char> = pattern[open + 1..close].chars().collect();
    let mut class = Vec::new();
    let mut i = 0;
    while i < class_src.len() {
        if i + 2 < class_src.len() && class_src[i + 1] == '-' {
            let (a, b) = (class_src[i], class_src[i + 2]);
            for c in a..=b {
                class.push(c);
            }
            i += 3;
        } else {
            class.push(class_src[i]);
            i += 1;
        }
    }
    assert!(!class.is_empty(), "empty character class in {pattern:?}");
    // Repetition: {lo,hi} (defaults to exactly one).
    let (mut lo, mut hi) = (1usize, 1usize);
    if let (Some(bo), Some(bc)) = (pattern.find('{'), pattern.find('}')) {
        let reps = &pattern[bo + 1..bc];
        if let Some((a, b)) = reps.split_once(',') {
            lo = a.trim().parse().expect("bad repetition lower bound");
            hi = b.trim().parse().expect("bad repetition upper bound");
        } else {
            lo = reps.trim().parse().expect("bad repetition count");
            hi = lo;
        }
    }
    (class, lo, hi)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` strategy: `size` elements (sampled uniformly from the
    /// half-open range) each drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner types (API-compat module path).
pub mod test_runner {
    pub use super::{ProptestConfig, TestRng};
}

/// Strategy types (API-compat module path).
pub mod strategy {
    pub use super::{Just, Map, Strategy};
}

/// The common imports.
pub mod prelude {
    pub use super::collection;
    pub use super::{Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Property-test entry macro (subset of proptest's).
///
/// Each case runs in a closure so `prop_assume!` can skip the rest of a
/// case with `return`. Failures panic immediately (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (
        ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __run = || {
                    $(let $p = $crate::sample(&$s, &mut __rng);)+
                    let _ = &__case;
                    $body
                };
                __run();
            }
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the rest of the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..200 {
            let f = crate::sample(&(1.5f64..2.5), &mut rng);
            assert!((1.5..2.5).contains(&f));
            let u = crate::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&u));
            let i = crate::sample(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn char_class_strategy_matches_shape() {
        let mut rng = TestRng::for_test("class");
        for _ in 0..100 {
            let s = crate::sample(&"[a-c9=./-]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| "abc9=./-".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_with_config_and_tuples((a, b) in (0u64..10, 0.0f64..1.0), v in collection::vec(0i32..3, 1..4)) {
            prop_assume!(a != 9);
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_eq!(v.len(), v.len());
            prop_assert!(!v.is_empty());
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in -1.0f64..1.0) {
            prop_assert!(x.abs() <= 1.0);
        }
    }
}
