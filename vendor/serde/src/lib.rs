//! Offline vendored subset of the `serde` API.
//!
//! The build environment has no crates.io access, so the workspace
//! ships a minimal serde replacement. Instead of serde's
//! visitor-based zero-copy architecture, values serialize into an
//! owned data-model tree ([`Node`]) and deserialize back out of one;
//! `serde_json` renders and parses that tree. The externally visible
//! behavior (derive on structs/enums, JSON shapes: newtype structs are
//! transparent, enums are externally tagged) matches real serde for
//! everything the workspace uses, so the shipped instance files parse
//! unchanged.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The serde data-model tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    Null,
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Node>),
    /// Key order is preserved (matches struct field order).
    Map(Vec<(String, Node)>),
}

impl Node {
    /// Looks up a key in a map node.
    pub fn get(&self, key: &str) -> Option<&Node> {
        match self {
            Node::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Node::Null => "null",
            Node::Bool(_) => "bool",
            Node::I64(_) | Node::U64(_) => "integer",
            Node::F64(_) => "float",
            Node::Str(_) => "string",
            Node::Seq(_) => "sequence",
            Node::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

fn type_err<T>(expected: &str, got: &Node) -> Result<T, DeError> {
    Err(DeError(format!(
        "invalid type: expected {expected}, found {}",
        got.kind()
    )))
}

/// A value that can be rendered into the data model.
pub trait Serialize {
    fn serialize_node(&self) -> Node;
}

/// A value that can be rebuilt from the data model.
pub trait Deserialize: Sized {
    fn deserialize_node(node: &Node) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_node(&self) -> Node {
                Node::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_node(node: &Node) -> Result<Self, DeError> {
                match node {
                    Node::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("integer {v} out of range"))),
                    Node::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("integer {v} out of range"))),
                    other => type_err("integer", other),
                }
            }
        }
    )*};
}

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_node(&self) -> Node {
                let v = *self as i64;
                if v < 0 { Node::I64(v) } else { Node::U64(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_node(node: &Node) -> Result<Self, DeError> {
                match node {
                    Node::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("integer {v} out of range"))),
                    Node::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("integer {v} out of range"))),
                    other => type_err("integer", other),
                }
            }
        }
    )*};
}

serde_uint!(u8, u16, u32, u64, usize);
serde_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize_node(&self) -> Node {
        Node::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_node(node: &Node) -> Result<Self, DeError> {
        match node {
            Node::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for f64 {
    fn serialize_node(&self) -> Node {
        Node::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize_node(node: &Node) -> Result<Self, DeError> {
        match node {
            Node::F64(v) => Ok(*v),
            Node::U64(v) => Ok(*v as f64),
            Node::I64(v) => Ok(*v as f64),
            other => type_err("float", other),
        }
    }
}

impl Serialize for f32 {
    fn serialize_node(&self) -> Node {
        Node::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn deserialize_node(node: &Node) -> Result<Self, DeError> {
        f64::deserialize_node(node).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn serialize_node(&self) -> Node {
        Node::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_node(node: &Node) -> Result<Self, DeError> {
        match node {
            Node::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn serialize_node(&self) -> Node {
        Node::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_node(&self) -> Node {
        Node::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize_node(node: &Node) -> Result<Self, DeError> {
        match node {
            Node::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-character string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_node(&self) -> Node {
        (**self).serialize_node()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_node(&self) -> Node {
        (**self).serialize_node()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_node(node: &Node) -> Result<Self, DeError> {
        T::deserialize_node(node).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_node(&self) -> Node {
        match self {
            None => Node::Null,
            Some(v) => v.serialize_node(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_node(node: &Node) -> Result<Self, DeError> {
        match node {
            Node::Null => Ok(None),
            other => T::deserialize_node(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_node(&self) -> Node {
        Node::Seq(self.iter().map(Serialize::serialize_node).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_node(node: &Node) -> Result<Self, DeError> {
        match node {
            Node::Seq(items) => items.iter().map(T::deserialize_node).collect(),
            other => type_err("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_node(&self) -> Node {
        Node::Seq(self.iter().map(Serialize::serialize_node).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_node(&self) -> Node {
        Node::Seq(self.iter().map(Serialize::serialize_node).collect())
    }
}

macro_rules! serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_node(&self) -> Node {
                Node::Seq(vec![$(self.$n.serialize_node()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_node(node: &Node) -> Result<Self, DeError> {
                match node {
                    Node::Seq(items) => {
                        let expected = [$($n),+].len();
                        if items.len() != expected {
                            return Err(DeError(format!(
                                "expected a tuple of {expected}, found {} elements",
                                items.len()
                            )));
                        }
                        Ok(($($t::deserialize_node(&items[$n])?,)+))
                    }
                    other => type_err("sequence", other),
                }
            }
        }
    )*};
}

serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_node(&self) -> Node {
        Node::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_node()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_node(node: &Node) -> Result<Self, DeError> {
        match node {
            Node::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_node(v)?)))
                .collect(),
            other => type_err("map", other),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_node(&self) -> Node {
        // Deterministic output: sort keys like a BTreeMap.
        let mut entries: Vec<_> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_node()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Node::Map(entries)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_node(node: &Node) -> Result<Self, DeError> {
        match node {
            Node::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_node(v)?)))
                .collect(),
            other => type_err("map", other),
        }
    }
}
