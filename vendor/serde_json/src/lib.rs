//! Offline vendored JSON front-end for the vendored serde subset.
//!
//! Prints and parses the [`serde::Node`] data-model tree. Output
//! conventions match real `serde_json` where the workspace can observe
//! them: floats print via Rust's shortest round-trip formatting (so
//! `1.0` keeps its `.0`), pretty output indents with two spaces, and
//! non-finite floats serialize as `null`.

use serde::{DeError, Deserialize, Node, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.0)
    }
}

/// Alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---- serialization ---------------------------------------------------

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_node(&mut out, &value.serialize_node(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_node(&mut out, &value.serialize_node(), Some(2), 0);
    Ok(out)
}

fn write_node(out: &mut String, node: &Node, indent: Option<usize>, depth: usize) {
    match node {
        Node::Null => out.push_str("null"),
        Node::Bool(true) => out.push_str("true"),
        Node::Bool(false) => out.push_str("false"),
        Node::I64(v) => out.push_str(&v.to_string()),
        Node::U64(v) => out.push_str(&v.to_string()),
        Node::F64(v) => {
            if v.is_finite() {
                // `{:?}` is Rust's shortest round-trip form and keeps a
                // trailing `.0` on integral values, matching serde_json.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Node::Str(s) => write_json_string(out, s),
        Node::Seq(items) => {
            write_delimited(
                out,
                indent,
                depth,
                '[',
                ']',
                items.len(),
                |out, i, depth| {
                    write_node(out, &items[i], indent, depth);
                },
            );
        }
        Node::Map(entries) => {
            write_delimited(
                out,
                indent,
                depth,
                '{',
                '}',
                entries.len(),
                |out, i, depth| {
                    let (k, v) = &entries[i];
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_node(out, v, indent, depth);
                },
            );
        }
    }
}

fn write_delimited(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- deserialization -------------------------------------------------

/// Parses JSON text into a value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let node = parse_node_str(s)?;
    Ok(T::deserialize_node(&node)?)
}

/// Parses JSON text into the raw data-model tree.
pub fn parse_node_str(s: &str) -> Result<Node> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let node = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(node)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, node: Node) -> Result<Node> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(node)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Node> {
        match self.peek() {
            Some(b'n') => self.literal("null", Node::Null),
            Some(b't') => self.literal("true", Node::Bool(true)),
            Some(b'f') => self.literal("false", Node::Bool(false)),
            Some(b'"') => self.string().map(Node::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Node> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Node::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Node::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Node> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Node::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Node::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| {
                                Error::new(format!("invalid \\u escape at byte {}", self.pos))
                            })?);
                            continue;
                        }
                        _ => {
                            return Err(Error::new(format!("invalid escape at byte {}", self.pos)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        self.pos += 1; // past 'u'
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::new(format!("invalid \\u escape at byte {}", self.pos)))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Node> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Node::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Node::I64)
                .or_else(|_| text.parse::<f64>().map(Node::F64))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Node::U64)
                .or_else(|_| text.parse::<f64>().map(Node::F64))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        let v: f64 = from_str("2.5e3").unwrap();
        assert_eq!(v, 2500.0);
        let n: i64 = from_str("-12").unwrap();
        assert_eq!(n, -12);
    }

    #[test]
    fn pretty_indents_with_two_spaces() {
        let node = vec![1u64, 2u64];
        assert_eq!(to_string_pretty(&node).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parses_nested_structures() {
        let node = parse_node_str(r#"{"a": [1, 2.5, null], "b": {"c": "x"}}"#).unwrap();
        assert_eq!(
            node.get("a"),
            Some(&Node::Seq(vec![Node::U64(1), Node::F64(2.5), Node::Null]))
        );
        assert_eq!(
            node.get("b").unwrap().get("c"),
            Some(&Node::Str("x".into()))
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_node_str("1 2").is_err());
        assert!(parse_node_str("{\"a\":}").is_err());
    }
}
