//! # fading-rls — Fading-Resistant Link Scheduling
//!
//! A reproduction of *"Fading-Resistant Link Scheduling in Wireless
//! Networks"* (Qiu & Shen, ICPP 2017) as a production-quality Rust
//! workspace. This facade crate re-exports the workspace's public API;
//! see the individual crates for the full documentation:
//!
//! * [`math`] — numeric substrate (ζ, compensated sums, statistics);
//! * [`geom`] — planar geometry (grids, coloring, spatial hashing);
//! * [`channel`] — Rayleigh-fading and deterministic SINR models;
//! * [`net`] — links, topologies, generators, length diversity;
//! * [`core`] — the Fading-R-LS problem, LDP/RLE and baseline
//!   schedulers, exact solvers, ILP, Knapsack reduction, multi-slot;
//! * [`sim`] — Monte-Carlo slot simulation and the Fig. 5/6 sweeps.
//!
//! ## Quickstart
//!
//! ```
//! use fading_rls::prelude::*;
//!
//! // The paper's workload: 300 links in a 500×500 field.
//! let links = UniformGenerator::paper(300).generate(42);
//! let problem = Problem::paper(links, 3.0); // α = 3, ε = 0.01
//!
//! // Schedule one slot with RLE and check the guarantee.
//! let schedule = Rle::new().schedule(&problem);
//! assert!(is_feasible(&problem, &schedule));
//!
//! // Monte-Carlo the channel: failures stay below ε per link.
//! let stats = simulate_many(&problem, &schedule, 200, 7);
//! assert!(stats.failed.mean <= 0.01 * schedule.len() as f64 + 0.5);
//! ```

pub use fading_channel as channel;
pub use fading_core as core;
pub use fading_geom as geom;
pub use fading_math as math;
pub use fading_net as net;
pub use fading_proto as proto;
pub use fading_sim as sim;
pub use fading_viz as viz;

/// The most common imports in one place.
pub mod prelude {
    pub use fading_channel::{ChannelParams, DeterministicSinr, RayleighChannel};
    pub use fading_core::algo::{
        Anneal, ApproxDiversity, ApproxLogN, Dls, ExactBnb, GraphModel, GreedyRate, Ldp,
        LocalSearch, PowerAssignment, RandomFeasible, Rle,
    };
    pub use fading_core::feasibility::{is_feasible, FeasibilityReport};
    pub use fading_core::multislot::{schedule_all, MultiSlotSchedule};
    pub use fading_core::{Problem, Schedule, Scheduler};
    pub use fading_net::{
        ClusteredGenerator, GridGenerator, LinearGenerator, Link, LinkId, LinkSet, RateModel,
        TopologyGenerator, UniformGenerator,
    };
    pub use fading_proto::DlsProtocol;
    pub use fading_sim::{simulate_many, simulate_slot, ExperimentConfig};
}
